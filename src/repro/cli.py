"""Command-line interface.

    python -m repro run PROGRAM.f [--input n=100] [--scheme LLS] ...
    python -m repro dump PROGRAM.f [--scheme LLS] [--no-optimize]
    python -m repro compare PROGRAM.f [--input n=100]
    python -m repro tables [--small]
    python -m repro figures
    python -m repro serve [--port P] [--workers N]
    python -m repro loadgen --url URL [--requests N] [--concurrency C]

``run`` executes a mini-Fortran file and reports outputs and dynamic
counts; ``dump`` prints the (optimized) IR; ``compare`` runs every
placement scheme and prints one Table 2 column for the file; ``tables``
regenerates the paper's Tables 1-3 on the benchmark suite; ``figures``
prints the figure reproductions; ``serve`` runs the long-lived compile
service and ``loadgen`` drives traffic at it.

Exit codes (the contract ``docs/API.md`` documents and
``tests/pipeline/test_cli.py`` locks in):

* 0 -- success;
* 1 -- the program trapped a range check at run time (or a fuzz
  campaign found failures);
* 2 -- usage or compile-time errors: bad flags, unreadable files,
  lex/parse/semantic diagnostics;
* 3 -- internal errors (unexpected exceptions, compiler resource
  exhaustion).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import __version__
from .checks.config import CheckKind, ImplicationMode, OptimizerOptions, Scheme
from .errors import RangeTrap, ReproError
from .ir.printer import format_module
from .pipeline.driver import compile_source
from .pipeline.stats import measure_baseline, measure_scheme

EXIT_OK = 0
EXIT_TRAP = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


def _usage_exit(message: str) -> "SystemExit":
    print("error: %s" % message, file=sys.stderr)
    return SystemExit(EXIT_USAGE)


ENGINE_NAMES = ("interp", "compiled", "specialized")


def _validate_engine(command: str, engine: str,
                     extra: tuple = ()) -> str:
    """Exit-code-2 contract: an unknown engine name is a usage error
    with a one-line message, never an argparse usage dump or a
    traceback."""
    allowed = ENGINE_NAMES + extra
    if engine not in allowed:
        raise _usage_exit("%s: unknown engine %r (choose from %s)"
                          % (command, engine, ", ".join(allowed)))
    return engine


def _parse_inputs(pairs: List[str]) -> Dict[str, float]:
    inputs: Dict[str, float] = {}
    for pair in pairs:
        name, _, text = pair.partition("=")
        name = name.strip()
        text = text.strip()
        if not name or not text:
            raise _usage_exit("--input expects NAME=VALUE, got %r" % pair)
        try:
            value = float(text) if "." in text or "e" in text.lower() \
                else int(text)
        except ValueError:
            raise _usage_exit(
                "--input %s: %r is not a decimal number" % (name, text))
        inputs[name] = value
    return inputs


def _options(args: argparse.Namespace) -> OptimizerOptions:
    return OptimizerOptions(
        scheme=Scheme[args.scheme],
        kind=CheckKind[args.kind],
        implication=ImplicationMode[args.implication],
        inline=getattr(args, "inline", False))


def _profile_options(command: str, spec: str, source: str,
                     inputs: Dict[str, float],
                     options: OptimizerOptions) -> OptimizerOptions:
    """Resolve a ``--profile PATH|auto|off`` flag into options.

    ``auto`` trains a fresh profile (LLS, same inputs); a path loads a
    serialized artifact.  Exit-code-2 contract: a missing, corrupt, or
    mismatched artifact is a one-line usage error, never a traceback
    (ProfileError is a ReproError, which ``main`` maps to exit 2; the
    fingerprint/source validation itself runs inside compile_source).
    """
    if not spec or spec == "off":
        return options
    if options.scheme is not Scheme.LO:
        raise _usage_exit("%s: --profile requires --scheme LO (the "
                          "profile-guided scheme); got %s"
                          % (command, options.scheme.name))
    if spec == "auto":
        from .pipeline.profile import train_profile

        profile = train_profile(source, options, inputs)
    else:
        from .pipeline.profile import EdgeProfile

        profile = EdgeProfile.load(spec)
    return OptimizerOptions(options.scheme, options.kind,
                            options.implication, profile=profile,
                            inline=options.inline)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="mini-Fortran source file")
    parser.add_argument("--scheme", default="LLS",
                        choices=[s.name for s in Scheme])
    parser.add_argument("--kind", default="PRX",
                        choices=[k.name for k in CheckKind])
    parser.add_argument("--implication", default="ALL",
                        choices=[m.name for m in ImplicationMode])
    parser.add_argument("--inline", action="store_true",
                        help="inline eligible subroutine calls before "
                             "check optimization (interprocedural "
                             "elimination)")
    parser.add_argument("--rotate-loops", action="store_true",
                        help="apply loop rotation before optimization")
    parser.add_argument("--verify-ir", action="store_true",
                        help="run the IR verifier after every pass")


def _cmd_run(args: argparse.Namespace) -> int:
    _validate_engine("run", args.engine)
    with open(args.file) as handle:
        source = handle.read()
    inputs = _parse_inputs(args.input)
    options = _profile_options("run", args.profile, source, inputs,
                               _options(args))
    collect_edges = bool(args.profile_out)
    program = compile_source(source, options,
                             optimize=not args.no_optimize,
                             rotate_loops=args.rotate_loops,
                             verify_ir=args.verify_ir)
    trap = None
    result = None
    try:
        if args.engine in ("compiled", "specialized"):
            result = program.run_compiled(inputs, engine=args.engine,
                                          collect_edges=collect_edges)
        else:
            result = program.run(inputs, collect_edges=collect_edges)
    except RangeTrap as error:
        trap = error
    if args.profile_out:
        if trap is None:
            from .pipeline.profile import profile_from_counters

            profile_from_counters(
                source, result.counters,
                kind=options.kind.value,
                implication=options.implication.value,
                scheme=options.scheme.value).write(args.profile_out)
            print("wrote %s" % args.profile_out, file=sys.stderr)
        else:
            print("profile not written: the program trapped",
                  file=sys.stderr)
    if args.json:
        import json

        from .reporting import run_to_dict

        stats = program.total_stats() if not args.no_optimize else None
        print(json.dumps(run_to_dict(
            _options(args).label(),
            result.counters if result is not None else None,
            list(result.output) if result is not None else [],
            trap=trap, optimize_stats=stats, trace=program.trace,
            frontend_cached=program.trace.frontend_was_cached(),
            engine=args.engine), indent=2, sort_keys=True))
        return EXIT_TRAP if trap is not None else EXIT_OK
    if trap is not None:
        print("TRAP: %s" % trap, file=sys.stderr)
        return EXIT_TRAP
    for value in result.output:
        print(value)
    counters = result.counters
    print("-- %d instructions, %d range checks executed"
          % (counters.instructions, counters.checks), file=sys.stderr)
    return EXIT_OK


def _cmd_dump(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = compile_source(source, _options(args),
                             optimize=not args.no_optimize,
                             rotate_loops=args.rotate_loops,
                             verify_ir=args.verify_ir)
    print(format_module(program.module))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .benchsuite import run_compare

    with open(args.file) as handle:
        source = handle.read()
    inputs = _parse_inputs(args.input)
    baseline = measure_baseline(args.file, source, inputs)
    cells = run_compare(source, CheckKind[args.kind],
                        baseline.dynamic_checks, inputs, jobs=args.jobs,
                        profile_mode=args.profile)
    if args.json:
        import json

        from .reporting import compare_to_dict

        print(json.dumps(compare_to_dict(args.file, baseline, cells),
                         indent=2, sort_keys=True))
        return 0
    print("naive checking: %d dynamic checks (%.1f%% of instructions)"
          % (baseline.dynamic_checks, baseline.dynamic_ratio))
    print("%-6s %12s %12s" % ("scheme", "dyn.checks", "eliminated"))
    for scheme, cell in cells:
        print("%-6s %12d %11.2f%%"
              % (scheme.value, cell.dynamic_checks,
                 cell.percent_eliminated))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .reporting import explain_optimization

    with open(args.file) as handle:
        source = handle.read()
    inputs = _parse_inputs(args.input)
    report = explain_optimization(source, _options(args), inputs)
    print(report.render())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    _validate_engine("tables", args.engine)
    from .benchsuite import run_suite
    from .reporting import (TABLE3_LABELS, render_tables_text,
                            table2_labels, tables_summary_line)

    suite = run_suite(small=args.small, jobs=args.jobs, engine=args.engine,
                      profile_mode=args.profile)
    if args.json:
        import json

        from .reporting import tables_to_dict

        print(json.dumps(tables_to_dict(suite, args.small,
                                        table2_labels(), TABLE3_LABELS),
                         indent=2, sort_keys=True))
        return EXIT_OK
    # The Range(s) wall-clock column is opt-in so the default table
    # text is byte-identical across runs and --jobs values (and to the
    # compile service's tables responses, which share this renderer).
    sys.stdout.write(render_tables_text(suite, timings=args.timings))
    print(tables_summary_line(suite), file=sys.stderr)
    if args.timings:
        for name in suite.names:
            stats = suite.cache_stats.get(name, {})
            print("-- cache[%s]: %d compiles, %d hits, %d misses, "
                  "%d disk hits, %d evictions"
                  % (name, stats.get("frontend_compiles", 0),
                     stats.get("hits", 0), stats.get("misses", 0),
                     stats.get("disk_hits", 0),
                     stats.get("evictions", 0)), file=sys.stderr)
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    _validate_engine("bench", args.engine, extra=("all",))
    import json
    import os

    from .benchsuite import all_programs, get_program, run_bench
    from .reporting import bench_to_dict

    if args.programs:
        try:
            programs = [get_program(name) for name in args.programs]
        except KeyError as error:
            raise _usage_exit("bench: %s" % error.args[0])
    else:
        programs = all_programs()
    # a backend-only request still runs the interpreter as the parity
    # reference: the whole point of the artifact is counts asserted
    # identical across engines
    if args.engine == "interp":
        engines = ("interp",)
    elif args.engine == "all":
        engines = ("interp", "compiled", "specialized")
    else:
        engines = ("interp", args.engine)
    # the artifact name derives from --tag so successive campaigns
    # (BENCH_4, BENCH_6, ...) can't silently clobber each other; an
    # explicit --out overrides, '' disables the artifact entirely
    out = args.out if args.out is not None else "BENCH_%s.json" % args.tag
    if out and os.path.exists(out) and not args.force:
        raise _usage_exit("bench: %s already exists "
                          "(pass --force to overwrite)" % out)
    options = OptimizerOptions(scheme=Scheme[args.scheme],
                               kind=CheckKind[args.kind])
    result = run_bench(programs, engines=engines, small=args.small,
                       repeats=args.repeats, options=options,
                       profile_mode=args.profile)
    doc = bench_to_dict(result)
    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % out, file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        compared = "interp" in result.engines and len(result.engines) > 1
        for row in result.programs:
            parts = ["%-10s" % row.name]
            for engine in result.engines:
                run = row.engines[engine]
                parts.append("%s %9.4fs" % (engine, run.seconds))
            if compared:
                parity = ("ok" if row.counts_match and row.output_match
                          else "MISMATCH(%s)"
                          % ",".join(row.mismatches or ["output"]))
                if "compiled" in row.engines:
                    parts.append("%7.2fx" % row.speedup)
                if "specialized" in row.engines:
                    parts.append("%7.2fx(sp)" % row.speedup_specialized)
                parts.append("counts %s" % parity)
            print("  ".join(parts))
        if compared:
            parts = ["%-10s" % "total"]
            for engine in result.engines:
                parts.append("%s %9.4fs"
                             % (engine, result.total_seconds(engine)))
            if "compiled" in result.engines:
                parts.append("%7.2fx" % result.speedup)
            if "specialized" in result.engines:
                parts.append("%7.2fx(sp)" % result.speedup_specialized)
            parts.append("counts %s"
                         % ("ok" if result.counts_ok() else "MISMATCH"))
            print("  ".join(parts))
    return EXIT_OK if result.counts_ok() else EXIT_TRAP


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import run_campaign

    config_labels = None
    if args.configs:
        config_labels = [label.strip()
                         for chunk in args.configs
                         for label in chunk.split(",") if label.strip()]
    if args.faults:
        from . import faults

        try:
            faults.parse_spec(args.faults)  # reject bad specs up front
        except faults.FaultSpecError as error:
            raise _usage_exit("fuzz: %s" % error)
    try:
        result = run_campaign(
            count=args.count, seed=args.seed, jobs=args.jobs,
            config_labels=config_labels, engines=not args.no_engines,
            corpus_dir=args.corpus, shrink_failures=not args.no_shrink,
            max_failures=args.max_failures,
            faults_spec=args.faults or None,
            cache_dir=args.cache_dir or None,
            log=lambda message: print(message, file=sys.stderr))
    except ValueError as error:
        raise _usage_exit("fuzz: %s" % error)
    print("fuzzed %d programs (seeds %d..%d): %d failure(s)"
          % (result.programs, args.seed, args.seed + args.count - 1,
             len(result.failures)))
    for failure in result.failures:
        print("-" * 60)
        print(failure.describe())
        print("program:")
        print(failure.source)
    return EXIT_OK if result.ok else EXIT_TRAP


def _cmd_figures(_args: argparse.Namespace) -> int:
    from .reporting import all_figures

    for name, report in all_figures().items():
        print(report)
        print()
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal

    from .service import CompileService

    if args.faults:
        from . import faults

        try:
            faults.parse_spec(args.faults)
        except faults.FaultSpecError as error:
            raise _usage_exit("serve: %s" % error)
        # the env var is the transport: process-pool workers re-arm
        # from it in their initializer
        os.environ[faults.ENV_VAR] = args.faults
        faults.arm_from_env()

    service = CompileService(host=args.host, port=args.port,
                             workers=args.workers,
                             worker_mode=args.worker_mode,
                             queue_limit=args.queue_limit,
                             request_timeout=args.request_timeout,
                             drain_timeout=args.drain_timeout)

    def _graceful(_signum, _frame):
        # drain from a helper thread: shutdown() must not run on the
        # accept-loop thread (and signal handlers run on the main one).
        import threading

        threading.Thread(target=service.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _graceful)
    print("repro-serve %s listening on %s (%d %s workers, "
          "queue limit %d, %.0fs timeout)"
          % (__version__, service.url, service.pool.workers,
             service.pool.mode, service.queue_limit,
             service.request_timeout), file=sys.stderr)
    service.serve_forever()
    service.wait_stopped(timeout=service.drain_timeout + 5.0)
    print("repro-serve: drained and stopped", file=sys.stderr)
    return EXIT_OK


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClient, run_loadgen

    slo_spec = None
    if args.slo:
        from .cluster.slo import SloParseError, parse_slo

        try:
            slo_spec = parse_slo(args.slo)
        except SloParseError as error:
            raise _usage_exit("loadgen: %s" % error)
    shard_urls = list(args.shard or [])
    if args.cluster:
        # the cluster admin /healthz reports every live shard's direct
        # URL — resolve them once so requests route with affinity
        try:
            health = ServiceClient(args.cluster, timeout=10.0).healthz()
        except (OSError, ValueError) as error:
            raise _usage_exit("loadgen: cannot reach cluster admin %s "
                              "(%s)" % (args.cluster, error))
        shard_urls.extend(
            shard["direct_url"]
            for shard in health.get("shard_status", ())
            if shard.get("alive") and shard.get("direct_url"))
        if not shard_urls:
            raise _usage_exit("loadgen: cluster %s reports no live "
                              "shards" % args.cluster)
    url = args.url or (shard_urls[0] if shard_urls else None)
    if url is None:
        raise _usage_exit("loadgen: need --url, --cluster, or --shard")
    report = run_loadgen(url, requests_total=args.requests,
                         concurrency=args.concurrency,
                         small=not args.large,
                         corpus_dir=args.corpus,
                         include_trap=not args.no_trap,
                         include_malformed=not args.no_malformed,
                         timeout=args.request_timeout,
                         out_path=args.out,
                         qps=args.qps, arrival_seed=args.seed,
                         slo=slo_spec,
                         shard_urls=shard_urls or None)
    print(report.summary(), file=sys.stderr)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif args.out:
        print(args.out)
    transport_errors = report.by_status().get("transport-error", 0)
    if report.slo_passed is False:
        print("loadgen: SLO %r FAILED" % report.slo_spec.spec,
              file=sys.stderr)
        return EXIT_TRAP
    return EXIT_OK if transport_errors == 0 else EXIT_TRAP


def _cmd_cluster(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .cluster import ClusterSupervisor

    if args.faults:
        from . import faults

        try:
            faults.parse_spec(args.faults)
        except faults.FaultSpecError as error:
            raise _usage_exit("cluster: %s" % error)
        # the env var is the transport: shards and their workers re-arm
        # from it after the fork
        os.environ[faults.ENV_VAR] = args.faults
        faults.arm_from_env()

    if args.bench:
        from .cluster.scaling import (record_section, render_section,
                                      run_scaling_ladder)

        shard_counts = [int(item) for chunk in (args.bench_shards or ["1,2,4,8"])
                        for item in chunk.split(",") if item.strip()]
        qps_ladder = [float(item) for chunk in (args.bench_qps or ["25,50,100"])
                      for item in chunk.split(",") if item.strip()]
        points = run_scaling_ladder(
            shard_counts=shard_counts, qps_ladder=qps_ladder,
            requests_total=args.bench_requests, workers=args.workers,
            worker_mode=args.worker_mode,
            log=lambda message: print(message, file=sys.stderr))
        section = render_section(points)
        record_section(args.bench_out, section)
        print(section)
        print("cluster: scaling curve written to %s" % args.bench_out,
              file=sys.stderr)
        return EXIT_OK

    supervisor = ClusterSupervisor(
        shards=args.shards, host=args.host, port=args.port,
        workers=args.workers, worker_mode=args.worker_mode,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        cache_dir=args.cache_dir or None,
        admin_port=args.admin_port)
    supervisor.start()

    def _graceful(_signum, _frame):
        threading.Thread(target=supervisor.shutdown,
                         daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _graceful)
    print("repro-cluster %s: %d shard(s) on %s (admin %s)"
          % (__version__, supervisor.shards, supervisor.url,
             supervisor.admin_url), file=sys.stderr)
    for url in supervisor.shard_urls:
        print("repro-cluster: shard direct %s" % url, file=sys.stderr)
    supervisor.wait_stopped()
    clean = supervisor.shutdown()  # idempotent: reports drain status
    print("repro-cluster: %s"
          % ("drained clean" if clean else "unclean shutdown"),
          file=sys.stderr)
    return EXIT_OK if clean else EXIT_INTERNAL


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Range-check optimization (Kolte & Wolfe, PLDI 1995)")
    parser.add_argument("--version", action="version",
                        version="repro %s" % __version__)
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="compile and execute")
    _add_common(run_parser)
    run_parser.add_argument("--input", action="append", default=[],
                            metavar="NAME=VALUE")
    run_parser.add_argument("--no-optimize", action="store_true")
    run_parser.add_argument("--engine", default="interp",
                            metavar="ENGINE",
                            help="tree-walking interpreter, the "
                                 "direct-threaded back-end, or the "
                                 "tier-2 specialized back-end "
                                 "(interp, compiled, specialized)")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the machine-readable run document "
                                 "(same schema as the compile service)")
    run_parser.add_argument("--profile", default="off",
                            metavar="PATH|auto|off",
                            help="edge profile guiding --scheme LO: a "
                                 "--profile-out artifact, 'auto' to "
                                 "self-train (LLS, same inputs), or "
                                 "'off' (default)")
    run_parser.add_argument("--profile-out", metavar="PATH",
                            help="collect per-edge execution counts "
                                 "during the run and write the training "
                                 "artifact to PATH")
    run_parser.set_defaults(handler=_cmd_run)

    dump_parser = commands.add_parser("dump", help="print optimized IR")
    _add_common(dump_parser)
    dump_parser.add_argument("--no-optimize", action="store_true")
    dump_parser.set_defaults(handler=_cmd_dump)

    compare_parser = commands.add_parser(
        "compare", help="run every scheme on one file")
    compare_parser.add_argument("file")
    compare_parser.add_argument("--input", action="append", default=[],
                                metavar="NAME=VALUE")
    compare_parser.add_argument("--kind", default="PRX",
                                choices=[k.name for k in CheckKind])
    compare_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                                help="measure schemes N at a time in a "
                                     "process pool")
    compare_parser.add_argument("--json", action="store_true",
                                help="emit machine-readable results")
    compare_parser.add_argument("--profile", default="auto",
                                choices=["auto", "off"],
                                help="LO row training: 'auto' (default) "
                                     "self-trains an edge profile, "
                                     "'off' degrades LO to LCM-latest")
    compare_parser.set_defaults(handler=_cmd_compare)

    explain_parser = commands.add_parser(
        "explain", help="per-family report of what the optimizer did")
    _add_common(explain_parser)
    explain_parser.add_argument("--input", action="append", default=[],
                                metavar="NAME=VALUE")
    explain_parser.set_defaults(handler=_cmd_explain)

    tables_parser = commands.add_parser(
        "tables", help="regenerate the paper's tables")
    tables_parser.add_argument("--small", action="store_true",
                               help="use test-sized inputs")
    tables_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                               help="run benchmark programs N at a time "
                                    "in a process pool")
    tables_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable results "
                                    "(counts + per-pass timings)")
    tables_parser.add_argument("--timings", action="store_true",
                               help="include the wall-clock Range(s) "
                                    "column (nondeterministic output)")
    tables_parser.add_argument("--engine", default="interp",
                               metavar="ENGINE",
                               help="execution engine for every "
                                    "measurement (interp, compiled, "
                                    "specialized); the rendered tables "
                                    "are identical either way")
    tables_parser.add_argument("--profile", default="auto",
                               choices=["auto", "off"],
                               help="LO column training: 'auto' "
                                    "(default) self-trains an edge "
                                    "profile per program, 'off' "
                                    "degrades LO to LCM-latest")
    tables_parser.set_defaults(handler=_cmd_tables)

    bench_parser = commands.add_parser(
        "bench", help="wall-clock comparison of the execution engines")
    bench_parser.add_argument("--engine", default="all",
                              metavar="ENGINE",
                              help="engine under test (interp, compiled, "
                                   "specialized, all); a back-end "
                                   "engine still runs the interpreter "
                                   "as the parity reference "
                                   "(default: all three)")
    bench_parser.add_argument("--small", action="store_true",
                              help="use test-sized inputs")
    bench_parser.add_argument("--programs", nargs="+", metavar="NAME",
                              help="benchmark subset (default: all ten)")
    bench_parser.add_argument("--repeats", type=int, default=3, metavar="N",
                              help="timed executions per engine; the best "
                                   "is reported (default 3)")
    bench_parser.add_argument("--json", action="store_true",
                              help="print the bench document to stdout")
    bench_parser.add_argument("--tag", default="6", metavar="TAG",
                              help="artifact tag; the document is "
                                   "written to BENCH_<TAG>.json "
                                   "(default %(default)s)")
    bench_parser.add_argument("--out", metavar="PATH", default=None,
                              help="write the bench document here "
                                   "(default BENCH_<tag>.json; "
                                   "'' disables)")
    bench_parser.add_argument("--force", action="store_true",
                              help="overwrite an existing artifact")
    bench_parser.add_argument("--scheme", default="LLS",
                              choices=[s.name for s in Scheme],
                              help="placement scheme every program is "
                                   "compiled under (default LLS)")
    bench_parser.add_argument("--kind", default="PRX",
                              choices=[k.name for k in CheckKind])
    bench_parser.add_argument("--profile", default="auto",
                              choices=["auto", "off"],
                              help="--scheme LO training: 'auto' "
                                   "(default) self-trains an edge "
                                   "profile per program, 'off' degrades "
                                   "LO to LCM-latest")
    bench_parser.set_defaults(handler=_cmd_bench)

    fuzz_parser = commands.add_parser(
        "fuzz", help="differential fuzzing of the check optimizer")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="first generator seed (default 0)")
    fuzz_parser.add_argument("--count", type=int, default=100, metavar="N",
                             help="number of programs to generate")
    fuzz_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="fuzz N seeds at a time in a process "
                                  "pool")
    fuzz_parser.add_argument("--configs", action="append", default=[],
                             metavar="LABELS",
                             help="comma-separated configuration labels "
                                  "(e.g. PRX-LLS,INX-SE); default: the "
                                  "full scheme x kind x implication "
                                  "matrix")
    fuzz_parser.add_argument("--corpus", metavar="DIR",
                             help="persist minimized failures into DIR")
    fuzz_parser.add_argument("--max-failures", type=int, default=10,
                             metavar="N",
                             help="keep at most N failures (default 10)")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="keep failing programs unminimized")
    fuzz_parser.add_argument("--faults", metavar="SPEC",
                             help="arm fault injection inside each oracle "
                                  "check (see docs/RESILIENCE.md; e.g. "
                                  "'diskcache.write:corrupt:p=0.5')")
    fuzz_parser.add_argument("--cache-dir", metavar="DIR",
                             help="on-disk frontend-cache directory for "
                                  "oracle compiles (required for the "
                                  "diskcache.* fault points to matter)")
    fuzz_parser.add_argument("--no-engines", action="store_true",
                             help="skip the Python back-end comparison "
                                  "(interpreter-only oracle)")
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    figures_parser = commands.add_parser(
        "figures", help="print figure reproductions")
    figures_parser.set_defaults(handler=_cmd_figures)

    serve_parser = commands.add_parser(
        "serve", help="run the long-lived compile service")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8377,
                              help="listen port (0 picks a free one)")
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N",
                              help="worker pool size (default 2)")
    serve_parser.add_argument("--worker-mode", default="process",
                              choices=["process", "thread", "inline"],
                              help="process pool (default), in-process "
                                   "threads, or inline execution")
    serve_parser.add_argument("--queue-limit", type=int, default=32,
                              metavar="N",
                              help="max admitted requests before 429 "
                                   "(default 32)")
    serve_parser.add_argument("--request-timeout", type=float, default=60.0,
                              metavar="SECONDS",
                              help="per-request deadline before 504 "
                                   "(default 60)")
    serve_parser.add_argument("--faults", metavar="SPEC",
                              help="arm deterministic fault injection "
                                   "(also honors the REPRO_FAULTS env "
                                   "var; see docs/RESILIENCE.md)")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              metavar="SECONDS",
                              help="max wait for in-flight work on "
                                   "shutdown (default 30)")
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = commands.add_parser(
        "loadgen", help="drive benchmark traffic at a compile service")
    loadgen_parser.add_argument("--url",
                                help="service base URL, e.g. "
                                     "http://127.0.0.1:8377 (optional "
                                     "when --cluster/--shard is given)")
    loadgen_parser.add_argument("--requests", type=int, default=50,
                                metavar="N",
                                help="total requests to send (default 50)")
    loadgen_parser.add_argument("--concurrency", type=int, default=8,
                                metavar="C",
                                help="concurrent client threads "
                                     "(default 8)")
    loadgen_parser.add_argument("--corpus", metavar="DIR",
                                help="also replay fuzz-corpus programs "
                                     "from DIR")
    loadgen_parser.add_argument("--large", action="store_true",
                                help="use full-sized benchmark inputs")
    loadgen_parser.add_argument("--no-trap", action="store_true",
                                help="omit the deliberately trapping "
                                     "program from the mix")
    loadgen_parser.add_argument("--no-malformed", action="store_true",
                                help="omit the malformed source from "
                                     "the mix")
    loadgen_parser.add_argument("--request-timeout", type=float,
                                default=120.0, metavar="SECONDS")
    loadgen_parser.add_argument("--out", metavar="PATH",
                                default="benchmarks/results/loadgen.json",
                                help="JSON artifact path (default "
                                     "benchmarks/results/loadgen.json)")
    loadgen_parser.add_argument("--json", action="store_true",
                                help="also print the report to stdout")
    loadgen_parser.add_argument("--qps", type=float, metavar="RATE",
                                help="open-loop arrivals at RATE qps "
                                     "(seeded Poisson; default: closed "
                                     "loop)")
    loadgen_parser.add_argument("--seed", type=int, default=0,
                                metavar="N",
                                help="arrival-process seed (default 0)")
    loadgen_parser.add_argument("--slo", metavar="SPEC",
                                help="grade the run, e.g. "
                                     "'p99<50ms@200qps' (comma-separated "
                                     "clauses; failing exits 1)")
    loadgen_parser.add_argument("--cluster", metavar="ADMIN_URL",
                                help="resolve live shard direct URLs "
                                     "from a cluster admin /healthz and "
                                     "route with consistent hashing")
    loadgen_parser.add_argument("--shard", action="append", metavar="URL",
                                help="explicit shard direct URL "
                                     "(repeatable; alternative to "
                                     "--cluster)")
    loadgen_parser.set_defaults(handler=_cmd_loadgen)

    cluster_parser = commands.add_parser(
        "cluster", help="pre-fork N compile-service shards on one "
                        "SO_REUSEPORT address")
    cluster_parser.add_argument("--shards", type=int, default=2,
                                metavar="N",
                                help="shard process count (default 2)")
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=8377,
                                help="shared listen port (0 picks a "
                                     "free one)")
    cluster_parser.add_argument("--admin-port", type=int, default=0,
                                metavar="PORT",
                                help="supervisor admin port for "
                                     "aggregated /metrics and /healthz "
                                     "(default: ephemeral)")
    cluster_parser.add_argument("--workers", type=int, default=2,
                                metavar="N",
                                help="worker pool size per shard "
                                     "(default 2)")
    cluster_parser.add_argument("--worker-mode", default="thread",
                                choices=["process", "thread", "inline"],
                                help="per-shard worker mode (default "
                                     "thread: shards are already "
                                     "processes)")
    cluster_parser.add_argument("--queue-limit", type=int, default=32,
                                metavar="N")
    cluster_parser.add_argument("--request-timeout", type=float,
                                default=60.0, metavar="SECONDS")
    cluster_parser.add_argument("--drain-timeout", type=float,
                                default=30.0, metavar="SECONDS")
    cluster_parser.add_argument("--cache-dir", metavar="DIR",
                                help="shared artifact store directory "
                                     "(sets REPRO_CACHE_DIR for every "
                                     "shard)")
    cluster_parser.add_argument("--faults", metavar="SPEC",
                                help="arm deterministic fault injection "
                                     "cluster-wide (docs/RESILIENCE.md)")
    cluster_parser.add_argument("--bench", action="store_true",
                                help="run the shard-count x QPS scaling "
                                     "ladder and record "
                                     "benchmarks/results/scaling.txt")
    cluster_parser.add_argument("--bench-shards", action="append",
                                metavar="N,N,...",
                                help="ladder shard counts (default "
                                     "1,2,4,8)")
    cluster_parser.add_argument("--bench-qps", action="append",
                                metavar="Q,Q,...",
                                help="ladder QPS rungs (default "
                                     "25,50,100)")
    cluster_parser.add_argument("--bench-requests", type=int, default=60,
                                metavar="N",
                                help="requests per ladder cell "
                                     "(default 60)")
    cluster_parser.add_argument("--bench-out", metavar="PATH",
                                default="benchmarks/results/scaling.txt",
                                help="scaling curve artifact path")
    cluster_parser.set_defaults(handler=_cmd_cluster)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_USAGE
    except RecursionError:
        print("error: nesting too deep for the compiler "
              "(simplify the expression or raise the recursion limit)",
              file=sys.stderr)
        return EXIT_INTERNAL
    except Exception as error:  # last resort: bounded, no traceback
        message = "%s: %s" % (type(error).__name__, error)
        if len(message) > 300:
            message = message[:300] + "..."
        print("internal error: %s" % message, file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
