"""Deterministic, seeded fault injection for the service and caches.

The resilience suite needs to drive every failure path the service
claims to survive — worker crashes, disk-cache corruption, admission
rejections, compile/parse failures — *on demand* and *reproducibly*.
This module is the single switchboard for that: a process-wide
registry of named **fault points** that production code consults at
the exact places where the real world can fail.

Fault points (the complete, closed set):

========================  ====================================================
``workerpool.spawn``      creating a process-pool executor (initial build
                          and every rebuild)
``diskcache.write``       publishing a frontend/backend disk-cache entry
``diskcache.read``        loading a frontend/backend disk-cache entry
``cache.lock``            acquiring the cross-process per-key file lock
                          that makes disk-cache fills cluster-wide
                          single-flight (a firing degrades the fill to
                          lock-less duplicate work, never a wrong result)
``service.accept``        admission of a ``/compile`` / ``/tables`` request
``backend.compile``       translating a module to Python
                          (:func:`~repro.backend.pybackend.compile_to_python`)
``frontend.parse``        parsing source text
                          (:func:`~repro.frontend.parser.parse_source`)
``cluster.spawn``         the cluster supervisor spawning (or respawning)
                          a shard process
========================  ====================================================

Arming is driven by a spec string — the ``REPRO_FAULTS`` environment
variable, the ``--faults`` CLI flags, or :func:`arm` — with the
grammar::

    spec    = point ":" action *( ":" key "=" value )
    specs   = spec *( "," spec )
    action  = "raise" | "corrupt" | "delay" | "kill"
    key     = "p"         probability per trial, float in [0, 1] (default 1)
            | "seed"      RNG seed for this point            (default 0)
            | "times"     stop after N firings               (default: ∞)
            | "delay_ms"  sleep duration for "delay"         (default 50)
            | "exc"       "fault" (RuntimeError) or "io" (ENOSPC OSError);
                          default "io" for diskcache.* points, else "fault"

e.g. ``REPRO_FAULTS="diskcache.write:corrupt:p=0.5:seed=7,
service.accept:raise:times=3"``.

Actions:

* ``raise``   — :func:`fire` raises :class:`FaultError` or
  :class:`FaultIOError`;
* ``delay``   — :func:`fire` sleeps ``delay_ms`` milliseconds;
* ``kill``    — :func:`fire` calls ``os._exit(KILL_EXIT_CODE)``,
  simulating a worker dying mid-request;
* ``corrupt`` — :func:`corrupt_bytes` deterministically mangles the
  payload (truncation, byte flips, or garbage framing, chosen by the
  point's RNG).

Determinism: each point owns a private ``random.Random(seed)``; firing
decisions and corruption shapes depend only on (seed, trial index), so
a failing resilience test replays exactly.

Zero overhead disarmed: with no plane armed, :func:`fire` is one
module-global load and a ``None`` test; :func:`corrupt_bytes` returns
its input unchanged.  No fault point allocates, locks, or reads the
environment on the hot path.

Process workers: ``ProcessPoolExecutor`` children re-arm from
``REPRO_FAULTS`` via an executor initializer (see
:class:`~repro.service.workers.WorkerPool`) — required because under
the ``fork`` start method a child inherits the parent's already-built
module state rather than re-importing it.
"""

from __future__ import annotations

import errno
import os
import re
import threading
import time
from contextlib import contextmanager
from random import Random
from typing import Dict, Iterator, List, Optional

#: Environment variable holding the fault spec; read at import time and
#: by every process-pool worker initializer.
ENV_VAR = "REPRO_FAULTS"

#: The closed set of fault-point names production code may consult.
FAULT_POINTS = (
    "workerpool.spawn",
    "diskcache.write",
    "diskcache.read",
    "cache.lock",
    "service.accept",
    "backend.compile",
    "frontend.parse",
    "cluster.spawn",
)

ACTIONS = ("raise", "corrupt", "delay", "kill")

#: Exit status of a ``kill`` firing — distinctive in post-mortems, and
#: asserted by the resilience suite's crash tests.
KILL_EXIT_CODE = 86


class FaultError(RuntimeError):
    """The canonical injected failure (``exc=fault``)."""


class FaultIOError(OSError):
    """An injected I/O failure (``exc=io``): ENOSPC, the nastiest of
    the disk-cache failure modes (partial writes, full volumes)."""

    def __init__(self, point: str) -> None:
        super().__init__(errno.ENOSPC, "injected I/O fault at %s" % point)


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` / ``--faults`` spec."""


class FaultPoint:
    """One armed fault point: action, probability, seed, firing cap."""

    __slots__ = ("name", "action", "probability", "seed", "times",
                 "delay_ms", "exc", "trials", "fires", "_rng", "_lock")

    def __init__(self, name: str, action: str, probability: float = 1.0,
                 seed: int = 0, times: Optional[int] = None,
                 delay_ms: float = 50.0, exc: Optional[str] = None) -> None:
        if name not in FAULT_POINTS:
            raise FaultSpecError(
                "unknown fault point %r (expected one of: %s)"
                % (name, ", ".join(FAULT_POINTS)))
        if action not in ACTIONS:
            raise FaultSpecError(
                "unknown fault action %r (expected one of: %s)"
                % (action, ", ".join(ACTIONS)))
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError("fault probability must be in [0, 1], "
                                 "got %r" % probability)
        if exc is None:
            exc = "io" if name.startswith("diskcache.") else "fault"
        if exc not in ("fault", "io"):
            raise FaultSpecError("exc must be 'fault' or 'io', got %r"
                                 % exc)
        if times is not None and times < 0:
            raise FaultSpecError("times must be >= 0, got %r" % times)
        if delay_ms < 0:
            raise FaultSpecError("delay_ms must be >= 0, got %r" % delay_ms)
        self.name = name
        self.action = action
        self.probability = probability
        self.seed = seed
        self.times = times
        self.delay_ms = delay_ms
        self.exc = exc
        self.trials = 0
        self.fires = 0
        self._rng = Random(seed)
        self._lock = threading.Lock()

    def trial(self) -> bool:
        """One firing decision; deterministic in (seed, trial index)."""
        with self._lock:
            if self.times is not None and self.fires >= self.times:
                return False
            self.trials += 1
            if self._rng.random() < self.probability:
                self.fires += 1
                return True
            return False

    def exception(self) -> Exception:
        if self.exc == "io":
            return FaultIOError(self.name)
        return FaultError("injected fault at %s" % self.name)

    def mangle(self, data: bytes) -> bytes:
        """Deterministically corrupt ``data`` (never returns it intact)."""
        with self._lock:
            mode = self._rng.randrange(3)
            if not data:
                return b"\x00"
            if mode == 0:  # truncation (torn write / partial read)
                return data[:max(0, len(data) // 2)]
            if mode == 1:  # scattered byte flips (media corruption)
                buffer = bytearray(data)
                for _ in range(max(1, len(buffer) // 64)):
                    buffer[self._rng.randrange(len(buffer))] ^= 0xFF
                return bytes(buffer)
            # garbage framing (a foreign file at the cache path)
            return b"\x00injected-garbage\x00" + data[:16]

    def describe(self) -> str:
        extras = ["p=%g" % self.probability]
        if self.times is not None:
            extras.append("times=%d" % self.times)
        extras.append("fires=%d/%d" % (self.fires, self.trials))
        return "%s:%s(%s)" % (self.name, self.action, ", ".join(extras))


_FLOAT_KEYS = {"p": "probability", "delay_ms": "delay_ms"}
_INT_KEYS = {"seed": "seed", "times": "times"}


def parse_spec(text: str) -> Dict[str, FaultPoint]:
    """Parse a spec string into ``{point name: FaultPoint}``.

    Raises :class:`FaultSpecError` on any malformed input; a point
    named twice keeps the last spec (explicit override semantics).
    """
    points: Dict[str, FaultPoint] = {}
    for chunk in re.split(r"[,;]", text):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise FaultSpecError(
                "fault spec %r needs at least point:action" % chunk)
        name, action = parts[0].strip(), parts[1].strip()
        kwargs: Dict[str, object] = {}
        for item in parts[2:]:
            key, sep, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not sep:
                raise FaultSpecError("fault option %r is not key=value"
                                     % item)
            try:
                if key in _FLOAT_KEYS:
                    kwargs[_FLOAT_KEYS[key]] = float(value)
                elif key in _INT_KEYS:
                    kwargs[_INT_KEYS[key]] = int(value)
                elif key == "exc":
                    kwargs["exc"] = value
                else:
                    raise FaultSpecError(
                        "unknown fault option %r (expected p, seed, "
                        "times, delay_ms, or exc)" % key)
            except ValueError as error:
                if isinstance(error, FaultSpecError):
                    raise
                raise FaultSpecError("bad value for %s in %r: %s"
                                     % (key, chunk, error))
        points[name] = FaultPoint(name, action, **kwargs)
    if not points:
        raise FaultSpecError("empty fault spec %r" % text)
    return points


class FaultPlane:
    """The armed registry; absent entirely (module global ``None``)
    when injection is disarmed."""

    def __init__(self, points: Dict[str, FaultPoint]) -> None:
        self._points = points

    def fire(self, name: str) -> None:
        point = self._points.get(name)
        if point is None or point.action == "corrupt":
            return
        if not point.trial():
            return
        if point.action == "delay":
            time.sleep(point.delay_ms / 1000.0)
            return
        if point.action == "kill":
            os._exit(KILL_EXIT_CODE)
        raise point.exception()

    def corrupt_bytes(self, name: str, data: bytes) -> bytes:
        point = self._points.get(name)
        if point is None or point.action != "corrupt":
            return data
        if not point.trial():
            return data
        return point.mangle(data)

    def describe(self) -> List[str]:
        return [self._points[name].describe()
                for name in sorted(self._points)]


_plane: Optional[FaultPlane] = None
_plane_lock = threading.Lock()


def enabled() -> bool:
    """Whether any fault point is armed in this process."""
    return _plane is not None


def fire(name: str) -> None:
    """Consult fault point ``name``; no-op unless armed and firing.

    May raise :class:`FaultError` / :class:`FaultIOError` (``raise``),
    sleep (``delay``), or exit the process (``kill``).
    """
    plane = _plane
    if plane is None:
        return
    plane.fire(name)


def corrupt_bytes(name: str, data: bytes) -> bytes:
    """Pass ``data`` through fault point ``name``; identity unless an
    armed ``corrupt`` action fires."""
    plane = _plane
    if plane is None:
        return data
    return plane.corrupt_bytes(name, data)


def arm(spec: str) -> None:
    """Arm the points in ``spec``, merging over any already armed."""
    points = parse_spec(spec)
    global _plane
    with _plane_lock:
        if _plane is not None:
            merged = dict(_plane._points)
            merged.update(points)
            points = merged
        _plane = FaultPlane(points)


def disarm(name: Optional[str] = None) -> None:
    """Disarm one point, or everything (``name=None``)."""
    global _plane
    with _plane_lock:
        if _plane is None:
            return
        if name is None:
            _plane = None
            return
        points = dict(_plane._points)
        points.pop(name, None)
        _plane = FaultPlane(points) if points else None


def arm_from_env() -> None:
    """Set the plane to exactly what ``REPRO_FAULTS`` says (or disarm
    when unset/empty).  Runs at import and in every process-pool
    worker initializer."""
    spec = os.environ.get(ENV_VAR, "").strip()
    global _plane
    with _plane_lock:
        _plane = FaultPlane(parse_spec(spec)) if spec else None


@contextmanager
def armed(spec: str) -> Iterator[None]:
    """Scoped arming for tests: arm exactly ``spec``, restore the
    previous plane (armed or not) on exit."""
    points = parse_spec(spec)
    global _plane
    with _plane_lock:
        previous = _plane
        _plane = FaultPlane(points)
    try:
        yield
    finally:
        with _plane_lock:
            _plane = previous


def describe() -> List[str]:
    """Human-readable state of every armed point (health endpoint)."""
    plane = _plane
    return plane.describe() if plane is not None else []


if os.environ.get(ENV_VAR, "").strip():
    arm_from_env()
