"""Exception hierarchy for the repro compiler.

Every error raised by the library derives from :class:`ReproError`, so
client code can catch a single base class.  Compile-time diagnostics
(lexing, parsing, semantic analysis, IR verification) carry an optional
source location.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SourceError(ReproError):
    """A diagnostic tied to a position in the source text."""

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None) -> None:
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is None:
            return self.message
        if self.column is None:
            return "line %d: %s" % (self.line, self.message)
        return "line %d, column %d: %s" % (self.line, self.column, self.message)


class LexError(SourceError):
    """Invalid token encountered while scanning source text."""


class ParseError(SourceError):
    """Invalid syntax encountered while parsing a token stream."""


class SemanticError(SourceError):
    """A legal parse that violates language rules (types, declarations)."""


class IRError(ReproError):
    """Malformed IR detected by the builder or verifier."""


class InterpError(ReproError):
    """Run-time error raised while interpreting IR."""


class StepLimitError(InterpError):
    """Execution exceeded its step budget (``max_steps`` fuel).

    Raised by *both* execution engines — the interpreter and the
    threaded-code Python back-end — so a non-terminating program fails
    the same way regardless of engine.  Note the step counts themselves
    are engine-specific: the back-end runs destructed SSA, whose
    parallel-copy sequences cost at least as many steps as the phis
    they replace, so the back-end can only hit the limit at the same
    program point or earlier.
    """


class CallDepthError(InterpError):
    """Call depth exceeded ``MAX_CALL_DEPTH`` (runaway recursion).

    Calls are 1:1 between engines, so this error is strictly
    engine-independent: either both engines raise it at the same call
    site, or neither does.  The fuzz oracle asserts exactly that.
    """


class RangeTrap(InterpError):
    """A range check failed at run time (the paper's TRAP)."""

    def __init__(self, message: str, check_repr: str = "") -> None:
        self.check_repr = check_repr
        super().__init__(message)


class BoundsAuditError(InterpError):
    """The interpreter's independent per-access bounds audit fired.

    Raised (only when the machine runs with ``bounds_audit=True``)
    the moment a Load/Store would touch an element outside the
    declared array bounds *without a preceding range check having
    trapped*.  A correct optimizer configuration can never reach this:
    the safety property of the transformation is exactly that every
    necessary check survives, so the trap fires first.
    """

    def __init__(self, array: str, indices, dim: int,
                 low: int, high: int) -> None:
        self.array = array
        self.indices = list(indices)
        self.dim = dim
        self.low = low
        self.high = high
        super().__init__(
            "bounds audit: array %s index %d outside %d:%d in dimension %d "
            "(access %r escaped range checking)"
            % (array, indices[dim - 1], low, high, dim, tuple(indices)))


class CompileTimeTrap(ReproError):
    """A range check was proven to always fail at compile time."""


class ProfileError(ReproError):
    """An edge-profile artifact could not be loaded or does not apply.

    Raised by :mod:`repro.pipeline.profile` when a ``--profile`` file
    is missing, truncated, corrupt (fingerprint mismatch), built for a
    different source program, or collected under an incompatible
    optimizer configuration.  The CLI maps it to a one-line usage
    error (exit 2) instead of a traceback.
    """
