"""The explanation report and the Python back-end, together.

Shows (1) the per-family report of what the optimizer did to each
check, and (2) executing the optimized program through the Python
back-end -- the paper's instrumented-translation methodology -- at an
input size the tree-walking interpreter would find slow.

Run:  python examples/explain_and_backend.py
"""

import time

from repro import OptimizerOptions, Scheme, compile_source
from repro.reporting import explain_optimization

SOURCE = """
program stencil
  input integer :: n = 5000
  integer :: i
  real :: x(6000), y(6000)
  do i = 2, n - 1
    y(i) = x(i - 1) * 0.25 + x(i) * 0.5 + x(i + 1) * 0.25
  end do
  print y(2)
end program
"""


def main() -> None:
    # 1. what did the optimizer do? (small input so the report is quick)
    report = explain_optimization(SOURCE,
                                  OptimizerOptions(scheme=Scheme.LLS),
                                  {"n": 200})
    print(report.render())

    # 2. run the optimized program at full size via the back-end
    program = compile_source(SOURCE, OptimizerOptions(scheme=Scheme.LLS))
    start = time.perf_counter()
    runtime = program.run_compiled({"n": 5000})
    compiled_time = time.perf_counter() - start

    naive = compile_source(SOURCE, optimize=False)
    start = time.perf_counter()
    naive_runtime = naive.run_compiled({"n": 5000})
    naive_time = time.perf_counter() - start

    print("\nfull-size run (n=5000, Python back-end):")
    print("  naive:     %8d checks  (%.3fs)"
          % (naive_runtime.counters.checks, naive_time))
    print("  optimized: %8d checks  (%.3fs)"
          % (runtime.counters.checks, compiled_time))
    assert runtime.output == naive_runtime.output


if __name__ == "__main__":
    main()
