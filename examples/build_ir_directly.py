"""Using the library below the frontend: build IR with the builder API,
insert canonical checks by hand, and run the optimizer.

This is the workflow for embedding the range-check optimizer in another
compiler: construct a CFG, attach Check instructions in canonical form,
convert to SSA, and call ``optimize_function``.

Run:  python examples/build_ir_directly.py
"""

from repro import OptimizerOptions, Scheme, format_function, optimize_function
from repro.checks import CanonicalCheck, make_check
from repro.interp import Machine
from repro.ir import (ArrayType, Dimension, Function, INT, IRBuilder, Module,
                      REAL, Var)
from repro.ssa import construct_ssa
from repro.symbolic import LinearExpr


def build() -> Module:
    function = Function("kernel", is_main=True)
    n = Var("n", INT)
    function.add_param(n)
    function.input_defaults["n"] = 50
    function.add_array("a", ArrayType(REAL, [Dimension.of(1, 100)]))

    builder = IRBuilder(function)
    entry = function.new_block("entry")
    header = function.new_block("header")
    body = function.new_block("body")
    exit_block = function.new_block("exit")

    i = Var("i", INT)
    builder.set_block(entry)
    builder.assign(i, 1)
    builder.jump(header)

    builder.set_block(header)
    builder.cond_jump(builder.binop("le", i, n), body, exit_block)

    builder.set_block(body)
    # canonical checks for a(i): 1 <= i <= 100
    subscript = LinearExpr.symbol("i")
    lower = CanonicalCheck.lower(subscript, LinearExpr.constant(1))
    upper = CanonicalCheck.upper(subscript, LinearExpr.constant(100))
    builder.emit(make_check(lower, {"i": i}, "lower", "a"))
    builder.emit(make_check(upper, {"i": i}, "upper", "a"))
    builder.store("a", [i], builder.unop("itor", i))
    builder.assign(i, builder.binop("add", i, 1))
    builder.jump(header)

    builder.set_block(exit_block)
    builder.ret()

    module = Module("demo")
    module.add(function)
    return module


def main() -> None:
    module = build()
    function = module.main
    construct_ssa(function)
    print("=== before optimization ===")
    print(format_function(function))

    machine = Machine(module, {"n": 50})
    machine.run()
    print("\nnaive: %d dynamic checks" % machine.counters.checks)

    stats = optimize_function(function, OptimizerOptions(scheme=Scheme.LLS))
    print("\n=== after LLS ===")
    print(format_function(function))
    print("\nstatic checks %d -> %d, inserted %d, eliminated %d"
          % (stats.checks_before, stats.checks_after, stats.inserted,
             stats.eliminated))

    machine = Machine(module, {"n": 50})
    machine.run()
    print("optimized: %d dynamic checks" % machine.counters.checks)


if __name__ == "__main__":
    main()
