"""Quickstart: compile a mini-Fortran program, optimize its range
checks, and compare dynamic check counts.

Run:  python examples/quickstart.py
"""

from repro import OptimizerOptions, Scheme, compile_source, format_module

SOURCE = """
program saxpy
  input integer :: n = 100
  integer :: i
  real :: x(200), y(200)
  do i = 1, n
    x(i) = real(i) * 0.5
    y(i) = 2.0 * x(i) + y(i)
  end do
  print y(1)
end program
"""


def main() -> None:
    # 1. naive range checking: every array access gets a lower and an
    #    upper subscript check (the paper's baseline)
    naive = compile_source(SOURCE, optimize=False)
    baseline = naive.run({"n": 100})
    print("naive checking:    %6d dynamic checks, %6d instructions"
          % (baseline.counters.checks, baseline.counters.instructions))

    # 2. the paper's winning scheme: preheader insertion with loop-limit
    #    substitution (LLS)
    optimized = compile_source(SOURCE, OptimizerOptions(scheme=Scheme.LLS))
    machine = optimized.run({"n": 100})
    percent = 100.0 * (1 - machine.counters.checks /
                       baseline.counters.checks)
    print("LLS optimization:  %6d dynamic checks  (%.2f%% eliminated)"
          % (machine.counters.checks, percent))
    assert machine.output == baseline.output

    # 3. what the optimizer did: the loop body is check-free, and two
    #    Cond-checks guard the loop in the preheader
    print("\noptimized IR:\n")
    print(format_module(optimized.module))


if __name__ == "__main__":
    main()
