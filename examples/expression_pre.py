"""The PRE substrate on arithmetic expressions (paper section 2.1).

The check optimizer is built on the same lazy-code-motion machinery
that classic PRE uses for expressions.  This example runs expression
PRE by itself: a partially redundant ``a*5`` (computed in one branch
and again after the join) is hoisted into a temporary on the other
branch, and the join recomputation becomes a copy.

Run:  python examples/expression_pre.py
"""

from repro import format_function
from repro.interp import Machine
from repro.ir import Function, INT, IRBuilder, Module, Var
from repro.pre import cleanup_after_lcm, eliminate_partial_redundancies


def build() -> Module:
    function = Function("main", is_main=True)
    builder = IRBuilder(function)
    entry = function.new_block("entry")
    then_block = function.new_block("then")
    else_block = function.new_block("else")
    join = function.new_block("join")

    a = Var("a", INT)
    c = Var("c", INT)
    d = Var("d", INT)

    builder.set_block(entry)
    builder.assign(a, 7)
    builder.cond_jump(builder.binop("gt", a, 3), then_block, else_block)

    builder.set_block(then_block)
    builder.assign(c, builder.binop("mul", a, 5))   # a*5 here...
    builder.jump(join)

    builder.set_block(else_block)
    builder.assign(c, 0)
    builder.jump(join)

    builder.set_block(join)
    builder.assign(d, builder.binop("mul", a, 5))   # ...and again here
    builder.print_value(d)
    builder.print_value(c)
    builder.ret()

    module = Module("m")
    module.add(function)
    return module


def main() -> None:
    module = build()
    function = module.main
    print("=== before PRE ===")
    print(format_function(function))
    before = Machine(module)
    before.run()

    inserted, replaced = eliminate_partial_redundancies(function)
    cleanup_after_lcm(function)
    print("\n=== after PRE (%d insertion(s), %d replacement(s)) ==="
          % (inserted, replaced))
    print(format_function(function))

    after = Machine(module)
    after.run()
    assert after.output == before.output
    print("\noutput unchanged:", after.output)


if __name__ == "__main__":
    main()
