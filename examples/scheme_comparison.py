"""Compare all seven placement schemes on one benchmark program.

Reproduces one column of the paper's Table 2, for any program of the
suite (default: linpackd).

Run:  python examples/scheme_comparison.py [program-name]
"""

import sys

from repro.benchsuite import all_programs, get_program
from repro.checks import CheckKind, OptimizerOptions, Scheme
from repro.pipeline.stats import measure_baseline, measure_scheme


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "linpackd"
    program = get_program(name)
    print("program: %s (%s suite)" % (program.name, program.suite))
    baseline = measure_baseline(program.name, program.source,
                                program.inputs)
    print("naive checking: %d dynamic checks, %d instructions "
          "(check/instr ratio %.1f%%)\n"
          % (baseline.dynamic_checks, baseline.dynamic_instructions,
             baseline.dynamic_ratio))
    print("%-6s %-6s %12s %12s %10s" % ("kind", "scheme", "dyn.checks",
                                        "eliminated", "opt time"))
    for kind in (CheckKind.PRX, CheckKind.INX):
        for scheme in Scheme:
            options = OptimizerOptions(scheme=scheme, kind=kind)
            cell = measure_scheme(program.name, program.source, options,
                                  baseline.dynamic_checks, program.inputs)
            print("%-6s %-6s %12d %11.2f%% %9.3fs"
                  % (kind.value, scheme.value, cell.dynamic_checks,
                     cell.percent_eliminated, cell.optimize_seconds))
        print()
    print("available programs: %s"
          % ", ".join(p.name for p in all_programs()))


if __name__ == "__main__":
    main()
