"""Regenerate the paper's Tables 1, 2, and 3 in one run.

This is the full evaluation of the paper on the synthetic stand-in
suite; it takes ~15 seconds.  Pass ``--small`` to use test-sized
inputs (~2 seconds).

Run:  python examples/reproduce_tables.py [--small]
"""

import sys

from repro.benchsuite import (TABLE2_SCHEMES, all_programs, run_table1,
                              run_table2, run_table3)
from repro.checks import CheckKind
from repro.reporting import (format_scheme_table, format_table1,
                             overhead_estimate)


def main() -> None:
    small = "--small" in sys.argv
    names = [p.name for p in all_programs()]

    rows = run_table1(small=small)
    print(format_table1(rows))
    low, high = overhead_estimate(rows)
    print("section 4.1 overhead estimate: %.0f%% - %.0f%%\n" % (low, high))

    cells2 = run_table2(small=small)
    labels2 = ["%s-%s" % (kind.value, scheme.value)
               for kind in (CheckKind.PRX, CheckKind.INX)
               for scheme in TABLE2_SCHEMES]
    print(format_scheme_table(cells2, labels2, names,
                              "Table 2: % of checks eliminated"))
    print()

    cells3 = run_table3(small=small)
    labels3 = ["PRX-NI", "PRX-NI'", "PRX-SE", "PRX-SE'", "PRX-LLS",
               "PRX-LLS'", "INX-NI", "INX-NI'", "INX-SE", "INX-SE'",
               "INX-LLS", "INX-LLS'"]
    print(format_scheme_table(cells3, labels3, names,
                              "Table 3: implication ablation"))


if __name__ == "__main__":
    main()
