"""Figure 1 of the paper, reproduced end to end.

The fragment

    integer A[5..10]
    A[2*N]   = 0      -- checks C1: 2N >= 5,   C2: 2N <= 10
    A[2*N-1] = 1      -- checks C3: 2N-1 >= 5, C4: 2N-1 <= 10

has four checks.  Availability alone (scheme NI) eliminates C4, because
C2 implies it.  Check strengthening (scheme CS) additionally replaces
C1 by the stronger C3, making the original C3 redundant: two checks
remain, exactly the paper's Figure 1(c).

Run:  python examples/figure1_strengthening.py
"""

from repro.reporting import figure1_availability, figure1_strengthening


def main() -> None:
    ni = figure1_availability()
    print("=== redundancy elimination only (Figure 1(a) -> 1(b)) ===")
    print("checks: %d -> %d" % (ni.checks_before, ni.checks_after))
    print(ni.after_ir)
    print()
    cs = figure1_strengthening()
    print("=== with check strengthening (Figure 1(a) -> 1(c)) ===")
    print("checks: %d -> %d" % (cs.checks_before, cs.checks_after))
    print(cs.after_ir)
    assert cs.checks_after == 2
    print("\nThe two surviving checks are the paper's C3 and C2:")
    for line in cs.after_ir.splitlines():
        if "check" in line:
            print("   ", line.strip())


if __name__ == "__main__":
    main()
