"""Figure 6 of the paper: hoisting checks out of a loop.

    do j = 1, 2*n
       ... A[k] ...     -- loop-invariant check
       ... A[j] ...     -- check linear in the loop index
    enddo

Preheader insertion turns the invariant check into
``Cond-check((1 <= 2*n), k <= 10)`` and, with loop-limit substitution,
the linear check into ``Cond-check((1 <= 2*n), 2*n <= 10)``.  The loop
body executes no checks at all.

Run:  python examples/figure6_preheader.py
"""

from repro import OptimizerOptions, Scheme, compile_source
from repro.reporting import FIGURE6_SOURCE, figure6_preheader


def main() -> None:
    report = figure6_preheader()
    print("=== before ===")
    print(report.before_ir)
    print("\n=== after LLS ===")
    print(report.after_ir)

    # dynamic effect: checks per run collapse from O(n) to O(1)
    naive = compile_source(FIGURE6_SOURCE, optimize=False)
    lls = compile_source(FIGURE6_SOURCE, OptimizerOptions(scheme=Scheme.LLS))
    for n in (1, 3, 5):
        base = naive.run({"n": n, "k": 7})
        opt = lls.run({"n": n, "k": 7})
        print("n=%d: %3d checks naive, %d optimized"
              % (n, base.counters.checks, opt.counters.checks))
        assert base.output == opt.output


if __name__ == "__main__":
    main()
