"""Tests for the loop-rotation transform."""

from repro.checks import OptimizerOptions, Scheme, optimize_module
from repro.interp import Machine
from repro.ir import CondJump, rotate_loops, rotate_module, verify_function
from repro.pipeline import compile_source
from repro.ssa import construct_ssa

from ..conftest import lower

WHILE_LOOP = """
program w
  input integer :: n = 10, k = 5
  integer :: i
  real :: a(10)
  i = 1
  while (i <= n) do
    a(k) = a(k) + 1.0
    i = i + 1
  end while
  print a(5)
end program
"""


class TestRotation:
    def test_rotates_while_loop(self):
        module = lower(WHILE_LOOP)
        assert rotate_loops(module.main) == 1

    def test_latch_gets_conditional_terminator(self):
        module = lower(WHILE_LOOP)
        rotate_loops(module.main)
        latches = [b for b in module.main.blocks
                   if b.name.startswith("wh_latch")]
        assert isinstance(latches[0].terminator, CondJump)

    def test_semantics_preserved(self):
        reference = lower(WHILE_LOOP)
        m1 = Machine(reference, {"n": 7})
        m1.run()
        module = lower(WHILE_LOOP)
        rotate_loops(module.main)
        verify_function(module.main)
        m2 = Machine(module, {"n": 7})
        m2.run()
        assert m1.output == m2.output
        assert m1.counters.checks == m2.counters.checks

    def test_zero_trip_semantics(self):
        module = lower(WHILE_LOOP)
        rotate_loops(module.main)
        machine = Machine(module, {"n": 0})
        machine.run()
        reference = Machine(lower(WHILE_LOOP), {"n": 0})
        reference.run()
        assert machine.output == reference.output

    def test_idempotent(self):
        module = lower(WHILE_LOOP)
        assert rotate_loops(module.main) == 1
        assert rotate_loops(module.main) == 0

    def test_ssa_construction_after_rotation(self):
        module = lower(WHILE_LOOP)
        rotate_module(module)
        for function in module:
            construct_ssa(function)
        machine = Machine(module, {"n": 5})
        machine.run()
        assert machine.output

    def test_straightline_untouched(self):
        module = lower("""
program p
  integer :: i
  i = 1
  print i
end program
""")
        assert rotate_loops(module.main) == 0


class TestRotationEnablesSE:
    """The paper: rotation lets safe-earliest hoist out of while loops."""

    def test_se_hoists_after_rotation(self):
        baseline = compile_source(WHILE_LOOP, optimize=False).run({"n": 40})
        plain = compile_source(WHILE_LOOP,
                               OptimizerOptions(scheme=Scheme.SE)
                               ).run({"n": 40})
        rotated = compile_source(WHILE_LOOP,
                                 OptimizerOptions(scheme=Scheme.SE),
                                 rotate_loops=True).run({"n": 40})
        assert rotated.output == baseline.output
        assert rotated.counters.checks < plain.counters.checks
        assert rotated.counters.checks <= 4  # hoisted out of the loop

    def test_rotation_preserves_traps(self):
        import pytest
        from repro.errors import RangeTrap
        program = compile_source(WHILE_LOOP,
                                 OptimizerOptions(scheme=Scheme.SE),
                                 rotate_loops=True)
        with pytest.raises(RangeTrap):
            program.run({"n": 5, "k": 11})

    def test_rotation_no_false_trap_on_zero_trip(self):
        # k out of bounds but the loop never runs: must not trap
        program = compile_source(WHILE_LOOP,
                                 OptimizerOptions(scheme=Scheme.SE),
                                 rotate_loops=True)
        machine = program.run({"n": 0, "k": 11})
        assert machine.output
