"""Tests for the IR printer."""

from repro.ir import format_block, format_function, format_module

from ..conftest import lower, lower_ssa


SOURCE = """
program show
  input integer :: n = 3
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
subroutine helper(x)
  real :: x(10)
  x(1) = 0.0
end subroutine
"""


class TestPrinter:
    def test_module_lists_main_first(self):
        text = format_module(lower(SOURCE))
        assert text.index("program show") < text.index("subroutine helper")

    def test_function_header_lists_params(self):
        module = lower(SOURCE)
        text = format_function(module.functions["helper"])
        assert "subroutine helper(&x)" in text

    def test_array_declarations_shown(self):
        text = format_function(lower(SOURCE).main)
        assert "array a: real(1:10)" in text

    def test_blocks_labelled(self):
        text = format_function(lower(SOURCE).main)
        assert "do_head" in text
        assert "entry" in text

    def test_checks_printed_in_paper_notation(self):
        text = format_function(lower(SOURCE).main)
        assert "check (" in text
        assert "<=" in text

    def test_phis_printed(self):
        text = format_function(lower_ssa(SOURCE).main)
        assert "phi(" in text

    def test_block_formatting(self):
        main = lower(SOURCE).main
        text = format_block(main.entry)
        assert text.startswith(main.entry.name + ":")
        assert "\n  " in text
