"""Tests for IR instructions, especially the Check canonical-form
rewriting used by SSA renaming and copy propagation."""

import pytest

from repro.errors import IRError
from repro.ir import (Assign, BinOp, Check, CondJump, Const, Function, INT,
                      Jump, Load, Phi, Return, Store, UnOp, Var)
from repro.ir.instructions import Guard
from repro.symbolic import LinearExpr


def make_check(terms, bound, kind="upper"):
    linexpr = LinearExpr(terms, 0)
    operands = {s: Var(s, INT) for s in linexpr.symbols()}
    return Check(linexpr, bound, operands, kind)


class TestUsesAndDefs:
    def test_assign(self):
        inst = Assign(Var("x", INT), Const(1))
        assert inst.def_var() == Var("x", INT)
        assert inst.uses() == [Const(1)]

    def test_binop(self):
        inst = BinOp(Var("t", INT), "add", Var("a", INT), Const(2))
        assert len(inst.uses()) == 2

    def test_bad_binop_op(self):
        with pytest.raises(IRError):
            BinOp(Var("t", INT), "frobnicate", Const(1), Const(2))

    def test_bad_unop_op(self):
        with pytest.raises(IRError):
            UnOp(Var("t", INT), "nope", Const(1))

    def test_load_store(self):
        load = Load(Var("t", INT), "a", [Var("i", INT)])
        store = Store("a", [Var("i", INT)], Var("t", INT))
        assert load.def_var() is not None
        assert store.def_var() is None
        assert Var("i", INT) in store.uses()

    def test_return_without_value(self):
        assert Return().uses() == []

    def test_terminator_flags(self):
        assert Return().is_terminator
        assert not Assign(Var("x", INT), Const(0)).is_terminator


class TestReplaceUses:
    def test_assign_replacement(self):
        inst = Assign(Var("x", INT), Var("y", INT))
        inst.replace_uses({Var("y", INT): Const(5)})
        assert inst.src == Const(5)

    def test_binop_replacement(self):
        inst = BinOp(Var("t", INT), "add", Var("a", INT), Var("a", INT))
        inst.replace_uses({Var("a", INT): Var("a.1", INT)})
        assert inst.lhs == Var("a.1", INT)
        assert inst.rhs == Var("a.1", INT)

    def test_dest_not_replaced(self):
        inst = Assign(Var("x", INT), Var("y", INT))
        inst.replace_uses({Var("x", INT): Var("z", INT)})
        assert inst.dest == Var("x", INT)


class TestCheck:
    def test_canonical_validation(self):
        with pytest.raises(IRError):
            Check(LinearExpr({"i": 1}, 0), 5, {}, "upper")

    def test_kind_validation(self):
        with pytest.raises(IRError):
            make_check({"i": 1}, 5, kind="sideways")

    def test_uses_are_operands(self):
        check = make_check({"i": 1, "n": -1}, 0)
        assert set(check.uses()) == {Var("i", INT), Var("n", INT)}

    def test_rename_updates_linexpr(self):
        check = make_check({"i": 2}, 10)
        check.replace_uses({Var("i", INT): Var("i.3", INT)})
        assert check.linexpr == LinearExpr({"i.3": 2}, 0)
        assert check.operands["i.3"] == Var("i.3", INT)

    def test_constant_folding_into_bound(self):
        check = make_check({"i": 2}, 10)
        check.replace_uses({Var("i", INT): Const(3)})
        assert check.linexpr.is_constant()
        assert check.bound == 4  # 2*3 <= 10 becomes 0 <= 4

    def test_partial_fold(self):
        check = make_check({"i": 1, "j": 1}, 10)
        check.replace_uses({Var("j", INT): Const(4)})
        assert check.linexpr == LinearExpr({"i": 1}, 0)
        assert check.bound == 6

    def test_rename_merges_symbols(self):
        check = make_check({"i": 1, "j": 2}, 10)
        check.replace_uses({Var("j", INT): Var("i", INT)})
        assert check.linexpr == LinearExpr({"i": 3}, 0)

    def test_guarded_check_uses_include_guard(self):
        guard = Guard(LinearExpr({"n": -1}, 0), -1, {"n": Var("n", INT)})
        check = Check(LinearExpr({"k": 1}, 0), 10, {"k": Var("k", INT)},
                      "upper", "a", [guard])
        assert check.is_conditional
        assert Var("n", INT) in check.uses()

    def test_guard_rename(self):
        guard = Guard(LinearExpr({"n": -1}, 0), -1, {"n": Var("n", INT)})
        check = Check(LinearExpr({"k": 1}, 0), 10, {"k": Var("k", INT)},
                      "upper", "a", [guard])
        check.replace_uses({Var("n", INT): Var("n.2", INT)})
        assert check.guards[0].linexpr == LinearExpr({"n.2": -1}, 0)

    def test_str_forms(self):
        check = make_check({"i": 1}, 9)
        assert "check (i <= 9)" in str(check)
        guard = Guard(LinearExpr({"n": -1}, 0), -1, {"n": Var("n", INT)})
        cond = Check(LinearExpr({"k": 1}, 0), 10, {"k": Var("k", INT)},
                     "upper", "", [guard])
        assert str(cond).startswith("cond-check")


class TestControlFlow:
    def test_jump_successors(self):
        function = Function("f", is_main=True)
        b1 = function.new_block()
        b2 = function.new_block()
        b1.append(Jump(b2))
        assert b1.successors() == [b2]

    def test_condjump_successors(self):
        function = Function("f", is_main=True)
        b1 = function.new_block()
        b2 = function.new_block()
        b3 = function.new_block()
        b1.append(CondJump(Const(True), b2, b3))
        assert b1.successors() == [b2, b3]

    def test_phi_value_for(self):
        function = Function("f", is_main=True)
        b1 = function.new_block()
        b2 = function.new_block()
        phi = Phi(Var("x", INT), [(b1, Const(1)), (b2, Const(2))])
        assert phi.value_for(b1) == Const(1)
        with pytest.raises(IRError):
            phi.value_for(function.new_block())

    def test_phi_set_value_for(self):
        function = Function("f", is_main=True)
        b1 = function.new_block()
        phi = Phi(Var("x", INT), [(b1, Const(1))])
        phi.set_value_for(b1, Const(9))
        assert phi.value_for(b1) == Const(9)
