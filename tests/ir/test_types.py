"""Tests for IR types."""

import pytest

from repro.ir import ArrayType, Dimension, INT, REAL
from repro.symbolic import LinearExpr


class TestDimension:
    def test_of_ints(self):
        dim = Dimension.of(1, 10)
        assert dim.lower == LinearExpr.constant(1)
        assert dim.upper == LinearExpr.constant(10)

    def test_of_symbol(self):
        dim = Dimension.of(1, "n")
        assert dim.upper == LinearExpr.symbol("n")

    def test_of_linexpr(self):
        dim = Dimension.of(LinearExpr.constant(0), LinearExpr({"n": 2}, -1))
        assert dim.upper.coefficient("n") == 2

    def test_extent(self):
        assert Dimension.of(1, 10).extent() == LinearExpr.constant(10)
        assert Dimension.of(0, 9).extent() == LinearExpr.constant(10)

    def test_is_static(self):
        assert Dimension.of(1, 10).is_static()
        assert not Dimension.of(1, "n").is_static()

    def test_equality(self):
        assert Dimension.of(1, 10) == Dimension.of(1, 10)
        assert Dimension.of(1, 10) != Dimension.of(0, 10)

    def test_bad_bound_type(self):
        with pytest.raises(TypeError):
            Dimension.of(1.5, 10)

    def test_str(self):
        assert str(Dimension.of(1, "n")) == "1:n"


class TestArrayType:
    def test_rank(self):
        atype = ArrayType(REAL, [Dimension.of(1, 10), Dimension.of(0, 5)])
        assert atype.rank == 2

    def test_requires_dimension(self):
        with pytest.raises(ValueError):
            ArrayType(INT, [])

    def test_is_static(self):
        static = ArrayType(INT, [Dimension.of(1, 4)])
        dynamic = ArrayType(INT, [Dimension.of(1, "n")])
        assert static.is_static()
        assert not dynamic.is_static()

    def test_equality(self):
        a = ArrayType(REAL, [Dimension.of(1, 10)])
        b = ArrayType(REAL, [Dimension.of(1, 10)])
        assert a == b
        assert hash(a) == hash(b)

    def test_str(self):
        atype = ArrayType(REAL, [Dimension.of(1, 10)])
        assert str(atype) == "real(1:10)"
