"""Tests for the IR builder: folding, identities, block-local CSE."""

import pytest

from repro.errors import IRError
from repro.ir import (ArrayType, BinOp, Const, Dimension, Function, INT,
                      IRBuilder, REAL, Var)


def fresh():
    function = Function("f", is_main=True)
    builder = IRBuilder(function)
    builder.set_block(function.new_block("entry"))
    return function, builder


class TestConstantFolding:
    def test_add(self):
        _, b = fresh()
        assert b.binop("add", 2, 3) == Const(5)

    def test_comparison(self):
        _, b = fresh()
        assert b.binop("lt", 2, 3) == Const(True)

    def test_int_division_truncates_toward_zero(self):
        _, b = fresh()
        assert b.binop("div", -7, 2) == Const(-3)
        assert b.binop("div", 7, -2) == Const(-3)

    def test_mod_sign_follows_dividend(self):
        _, b = fresh()
        assert b.binop("mod", -7, 2) == Const(-1)
        assert b.binop("mod", 7, 2) == Const(1)

    def test_division_by_zero_not_folded(self):
        _, b = fresh()
        result = b.binop("div", 1, 0)
        assert isinstance(result, Var)

    def test_min_max(self):
        _, b = fresh()
        assert b.binop("min", 2, 3) == Const(2)
        assert b.binop("max", 2, 3) == Const(3)

    def test_unop_folds(self):
        _, b = fresh()
        assert b.unop("neg", 4) == Const(-4)
        assert b.unop("abs", -4) == Const(4)
        assert b.unop("itor", 2) == Const(2.0)
        assert b.unop("rtoi", 2.9) == Const(2)

    def test_transcendental_not_folded(self):
        _, b = fresh()
        assert isinstance(b.unop("sqrt", 4.0), Var)


class TestIdentities:
    def test_add_zero(self):
        _, b = fresh()
        v = Var("x", INT)
        assert b.binop("add", v, 0) is v
        assert b.binop("add", 0, v) is v

    def test_mul_one(self):
        _, b = fresh()
        v = Var("x", INT)
        assert b.binop("mul", v, 1) is v

    def test_real_identities_preserved(self):
        # x + 0 on reals must not be folded (signed-zero semantics)
        _, b = fresh()
        v = Var("x", REAL)
        assert isinstance(b.binop("add", v, 0), Var)


class TestLocalCSE:
    def test_repeated_expression_reuses_temp(self):
        _, b = fresh()
        v = Var("x", INT)
        t1 = b.binop("mul", v, 5)
        t2 = b.binop("mul", v, 5)
        assert t1 is t2

    def test_assignment_invalidates(self):
        _, b = fresh()
        v = Var("x", INT)
        t1 = b.binop("mul", v, 5)
        b.assign(v, 7)
        t2 = b.binop("mul", v, 5)
        assert t1 is not t2

    def test_block_change_invalidates(self):
        f, b = fresh()
        v = Var("x", INT)
        t1 = b.binop("mul", v, 5)
        b.jump(f.new_block("next"))
        b.set_block(f.blocks[-1])
        t2 = b.binop("mul", v, 5)
        assert t1 is not t2

    def test_call_invalidates(self):
        f, b = fresh()
        v = Var("x", INT)
        t1 = b.binop("mul", v, 5)
        b.call("sub", [], [])
        t2 = b.binop("mul", v, 5)
        assert t1 is not t2

    def test_unop_cse(self):
        _, b = fresh()
        v = Var("x", INT)
        assert b.unop("neg", v) is b.unop("neg", v)


class TestStructure:
    def test_emit_into_terminated_block_fails(self):
        f, b = fresh()
        b.ret()
        with pytest.raises(IRError):
            b.binop("add", Var("x", INT), Var("y", INT))

    def test_load_requires_declared_array(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.load("ghost", [Const(1)])

    def test_store_requires_declared_array(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.store("ghost", [Const(1)], Const(1))

    def test_load_result_type(self):
        f, b = fresh()
        f.add_array("a", ArrayType(REAL, [Dimension.of(1, 4)]))
        dest = b.load("a", [Const(1)])
        assert dest.type is REAL

    def test_temp_types_recorded(self):
        f, b = fresh()
        t = b.new_temp(REAL)
        assert f.scalar_types[t.name] is REAL

    def test_result_type_mixing(self):
        _, b = fresh()
        t = b.binop("add", Var("x", INT), Var("y", REAL))
        assert t.type is REAL
        c = b.binop("lt", Var("x", INT), Var("z", INT))
        assert c.type.value == "bool"
