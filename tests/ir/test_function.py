"""Tests for Function/Module structure and CFG edits."""

import pytest

from repro.errors import IRError
from repro.ir import (ArrayType, Const, Dimension, Function, INT, Jump,
                      Module, Phi, REAL, Return, CondJump, Var)


def diamond():
    f = Function("f", is_main=True)
    entry = f.new_block("entry")
    left = f.new_block("left")
    right = f.new_block("right")
    join = f.new_block("join")
    entry.append(CondJump(Const(True), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Return())
    return f, entry, left, right, join


class TestFunction:
    def test_first_block_is_entry(self):
        f = Function("f")
        block = f.new_block()
        assert f.entry is block

    def test_predecessors(self):
        f, entry, left, right, join = diamond()
        preds = f.predecessor_map()
        assert set(preds[join]) == {left, right}
        assert preds[entry] == []

    def test_reachable_blocks(self):
        f, *_ = diamond()
        orphan = f.new_block("orphan")
        orphan.append(Return())
        assert orphan not in f.reachable_blocks()

    def test_remove_unreachable(self):
        f, *_ = diamond()
        orphan = f.new_block("orphan")
        orphan.append(Return())
        removed = f.remove_unreachable_blocks()
        assert orphan in removed
        assert orphan not in f.blocks

    def test_remove_unreachable_prunes_phis(self):
        f, entry, left, right, join = diamond()
        orphan = f.new_block("orphan")
        orphan.append(Jump(join))
        phi = Phi(Var("x", INT), [(left, Const(1)), (right, Const(2)),
                                  (orphan, Const(3))])
        join.insert(0, phi)
        f.remove_unreachable_blocks()
        assert len(phi.incoming) == 2

    def test_duplicate_array_rejected(self):
        f = Function("f")
        atype = ArrayType(REAL, [Dimension.of(1, 4)])
        f.add_array("a", atype)
        with pytest.raises(IRError):
            f.add_array("a", atype)

    def test_scalar_redeclared_with_other_type(self):
        f = Function("f")
        f.declare_scalar(Var("x", INT))
        with pytest.raises(IRError):
            f.declare_scalar(Var("x", REAL))

    def test_split_edge(self):
        f, entry, left, right, join = diamond()
        middle = f.split_edge(left, join)
        assert middle in f.blocks
        assert left.successors() == [middle]
        assert middle.successors() == [join]

    def test_split_edge_retargets_phi(self):
        f, entry, left, right, join = diamond()
        phi = Phi(Var("x", INT), [(left, Const(1)), (right, Const(2))])
        join.insert(0, phi)
        middle = f.split_edge(left, join)
        assert phi.value_for(middle) == Const(1)

    def test_split_conditional_edge(self):
        f, entry, left, right, join = diamond()
        middle = f.split_edge(entry, left)
        assert entry.successors()[0] is middle

    def test_split_missing_edge_fails(self):
        f, entry, left, right, join = diamond()
        with pytest.raises(IRError):
            f.split_edge(left, entry)


class TestModule:
    def test_main_registration(self):
        module = Module()
        module.add(Function("main", is_main=True))
        assert module.main.name == "main"

    def test_duplicate_function(self):
        module = Module()
        module.add(Function("f"))
        with pytest.raises(IRError):
            module.add(Function("f"))

    def test_two_mains_rejected(self):
        module = Module()
        module.add(Function("a", is_main=True))
        with pytest.raises(IRError):
            module.add(Function("b", is_main=True))

    def test_lookup_unknown(self):
        with pytest.raises(IRError):
            Module().lookup("ghost")
