"""Tests for the IR verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (Assign, Const, Function, INT, Jump, Module, Phi,
                      Return, Var, verify_function, verify_module)
from repro.ir.instructions import Call


def terminated_function():
    f = Function("f", is_main=True)
    block = f.new_block("entry")
    block.append(Return())
    return f, block


class TestVerifyFunction:
    def test_valid_function_passes(self):
        f, _ = terminated_function()
        verify_function(f)

    def test_missing_entry(self):
        with pytest.raises(IRError):
            verify_function(Function("f"))

    def test_unterminated_block(self):
        f = Function("f")
        block = f.new_block()
        block.append(Assign(Var("x", INT), Const(1)))
        with pytest.raises(IRError):
            verify_function(f)

    def test_empty_block(self):
        f = Function("f")
        f.new_block()
        with pytest.raises(IRError):
            verify_function(f)

    def test_misplaced_phi(self):
        f, block = terminated_function()
        block.insert(0, Assign(Var("x", INT), Const(1)))
        block.insert(1, Phi(Var("y", INT)))
        with pytest.raises(IRError):
            verify_function(f)

    def test_phi_predecessor_mismatch(self):
        f = Function("f")
        entry = f.new_block("entry")
        other = f.new_block("other")
        join = f.new_block("join")
        entry.append(Jump(join))
        other.append(Jump(join))  # 'other' is unreachable but listed
        phi = Phi(Var("x", INT), [(entry, Const(1))])
        join.insert(0, phi)
        join.append(Return())
        with pytest.raises(IRError):
            verify_function(f)

    def test_stale_block_pointer(self):
        f, block = terminated_function()
        stray = Assign(Var("x", INT), Const(1))
        stray.block = None
        block.instructions.insert(0, stray)  # bypass append()
        with pytest.raises(IRError):
            verify_function(f)

    def test_noncanonical_check(self):
        from repro.ir import Check
        from repro.symbolic import LinearExpr
        f, block = terminated_function()
        bad = Check.__new__(Check)
        bad.linexpr = LinearExpr({"i": 1}, 5)  # nonzero constant term
        bad.bound = 0
        bad.operands = {"i": Var("i", INT)}
        bad.kind = "upper"
        bad.array = ""
        bad.guards = []
        bad.block = block
        block.instructions.insert(0, bad)
        with pytest.raises(IRError):
            verify_function(f)


class TestVerifyModule:
    def test_call_scalar_arity(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("callee", [Const(1), Const(2)]))
        entry.append(Return())
        callee = Function("callee")
        callee.add_param(Var("n", INT))
        callee.new_block().append(Return())
        module.add(caller)
        module.add(callee)
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_array_arity(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("callee", [], ["a"]))
        entry.append(Return())
        callee = Function("callee")
        callee.new_block().append(Return())
        module.add(caller)
        module.add(callee)
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_unknown_function(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("ghost", []))
        entry.append(Return())
        module.add(caller)
        with pytest.raises(IRError):
            verify_module(module)
