"""Tests for the IR verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (Assign, Const, Function, INT, Jump, Module, Phi,
                      Return, Var, verify_function, verify_module)
from repro.ir.instructions import Call


def terminated_function():
    f = Function("f", is_main=True)
    block = f.new_block("entry")
    block.append(Return())
    return f, block


class TestVerifyFunction:
    def test_valid_function_passes(self):
        f, _ = terminated_function()
        verify_function(f)

    def test_missing_entry(self):
        with pytest.raises(IRError):
            verify_function(Function("f"))

    def test_unterminated_block(self):
        f = Function("f")
        block = f.new_block()
        block.append(Assign(Var("x", INT), Const(1)))
        with pytest.raises(IRError):
            verify_function(f)

    def test_empty_block(self):
        f = Function("f")
        f.new_block()
        with pytest.raises(IRError):
            verify_function(f)

    def test_misplaced_phi(self):
        f, block = terminated_function()
        block.insert(0, Assign(Var("x", INT), Const(1)))
        block.insert(1, Phi(Var("y", INT)))
        with pytest.raises(IRError):
            verify_function(f)

    def test_phi_predecessor_mismatch(self):
        f = Function("f")
        entry = f.new_block("entry")
        other = f.new_block("other")
        join = f.new_block("join")
        entry.append(Jump(join))
        other.append(Jump(join))  # 'other' is unreachable but listed
        phi = Phi(Var("x", INT), [(entry, Const(1))])
        join.insert(0, phi)
        join.append(Return())
        with pytest.raises(IRError):
            verify_function(f)

    def test_stale_block_pointer(self):
        f, block = terminated_function()
        stray = Assign(Var("x", INT), Const(1))
        stray.block = None
        block.instructions.insert(0, stray)  # bypass append()
        with pytest.raises(IRError):
            verify_function(f)

    def test_noncanonical_check(self):
        from repro.ir import Check
        from repro.symbolic import LinearExpr
        f, block = terminated_function()
        bad = Check.__new__(Check)
        bad.linexpr = LinearExpr({"i": 1}, 5)  # nonzero constant term
        bad.bound = 0
        bad.operands = {"i": Var("i", INT)}
        bad.kind = "upper"
        bad.array = ""
        bad.guards = []
        bad.block = block
        block.instructions.insert(0, bad)
        with pytest.raises(IRError):
            verify_function(f)


class TestVerifyModule:
    def test_call_scalar_arity(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("callee", [Const(1), Const(2)]))
        entry.append(Return())
        callee = Function("callee")
        callee.add_param(Var("n", INT))
        callee.new_block().append(Return())
        module.add(caller)
        module.add(callee)
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_array_arity(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("callee", [], ["a"]))
        entry.append(Return())
        callee = Function("callee")
        callee.new_block().append(Return())
        module.add(caller)
        module.add(callee)
        with pytest.raises(IRError):
            verify_module(module)

    def test_call_unknown_function(self):
        module = Module()
        caller = Function("main", is_main=True)
        entry = caller.new_block()
        entry.append(Call("ghost", []))
        entry.append(Return())
        module.add(caller)
        with pytest.raises(IRError):
            verify_module(module)


class TestPhiConsistency:
    def test_phi_in_entry_block(self):
        f, block = terminated_function()
        block.insert(0, Phi(Var("x", INT)))
        with pytest.raises(IRError):
            verify_function(f)

    def test_phi_incoming_block_not_in_function(self):
        other = Function("other")
        foreign = other.new_block("foreign")
        foreign.append(Return())
        f = Function("f")
        entry = f.new_block("entry")
        join = f.new_block("join")
        entry.append(Jump(join))
        join.insert(0, Phi(Var("x", INT), [(foreign, Const(1))]))
        join.append(Return())
        with pytest.raises(IRError):
            verify_function(f)

    def test_phi_arity_mismatch(self):
        from repro.ir.instructions import CondJump
        f = Function("f")
        entry = f.new_block("entry")
        left = f.new_block("left")
        right = f.new_block("right")
        join = f.new_block("join")
        entry.append(CondJump(Const(1), left, right))
        left.append(Jump(join))
        right.append(Jump(join))
        # only one incoming value for two predecessors
        join.insert(0, Phi(Var("x", INT), [(left, Const(1))]))
        join.append(Return())
        with pytest.raises(IRError):
            verify_function(f)


def diamond():
    """entry -> (left | right) -> join, all terminated, no phis yet."""
    from repro.ir.instructions import CondJump
    f = Function("f")
    entry = f.new_block("entry")
    left = f.new_block("left")
    right = f.new_block("right")
    join = f.new_block("join")
    entry.append(CondJump(Const(1), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Return())
    f.ssa_form = True
    return f, entry, left, right, join


class TestDefDominatesUse:
    def test_valid_diamond_with_phi_passes(self):
        f, entry, left, right, join = diamond()
        left.insert(0, Assign(Var("x.1", INT), Const(1)))
        right.insert(0, Assign(Var("x.2", INT), Const(2)))
        join.insert(0, Phi(Var("x.3", INT),
                           [(left, Var("x.1", INT)),
                            (right, Var("x.2", INT))]))
        verify_function(f)

    def test_sibling_def_does_not_dominate_use(self):
        f, entry, left, right, join = diamond()
        left.insert(0, Assign(Var("x.1", INT), Const(1)))
        # 'right' uses a definition made only on the sibling path
        right.insert(0, Assign(Var("y.1", INT), Var("x.1", INT)))
        with pytest.raises(IRError, match="does not dominate"):
            verify_function(f)

    def test_branch_def_used_in_join_without_phi(self):
        f, entry, left, right, join = diamond()
        left.insert(0, Assign(Var("x.1", INT), Const(1)))
        join.insert(0, Assign(Var("y.1", INT), Var("x.1", INT)))
        with pytest.raises(IRError, match="does not dominate"):
            verify_function(f)

    def test_use_before_def_in_same_block(self):
        f, block = terminated_function()
        f.ssa_form = True
        block.insert(0, Assign(Var("y.1", INT), Var("x.1", INT)))
        block.insert(1, Assign(Var("x.1", INT), Const(1)))
        with pytest.raises(IRError, match="precedes its definition"):
            verify_function(f)

    def test_phi_use_must_dominate_incoming_edge(self):
        f, entry, left, right, join = diamond()
        left.insert(0, Assign(Var("x.1", INT), Const(1)))
        # the value flowing in from 'right' is only defined on 'left'
        join.insert(0, Phi(Var("x.2", INT),
                           [(left, Var("x.1", INT)),
                            (right, Var("x.1", INT))]))
        with pytest.raises(IRError, match="does not dominate"):
            verify_function(f)

    def test_undefined_read_is_legal(self):
        # reads before any write default to zero; no def to dominate
        f, block = terminated_function()
        f.ssa_form = True
        block.insert(0, Assign(Var("y.1", INT), Var("x", INT)))
        verify_function(f)

    def test_non_ssa_function_is_exempt(self):
        # two defs of the same name with ssa_form off: dominance rule
        # (and the single-def rule) are not in force
        f, entry, left, right, join = diamond()
        f.ssa_form = False
        left.insert(0, Assign(Var("x", INT), Const(1)))
        right.insert(0, Assign(Var("x", INT), Const(2)))
        join.insert(0, Assign(Var("y", INT), Var("x", INT)))
        verify_function(f)

    def test_ssa_function_rejects_double_def(self):
        f, entry, left, right, join = diamond()
        left.insert(0, Assign(Var("x", INT), Const(1)))
        right.insert(0, Assign(Var("x", INT), Const(2)))
        with pytest.raises(IRError, match="more than once"):
            verify_function(f)
