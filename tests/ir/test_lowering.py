"""Tests for AST-to-IR lowering, including naive check insertion."""

import pytest

from repro.checks.canonical import CanonicalCheck
from repro.errors import SemanticError
from repro.ir import Check, Load, Store
from repro.ir.lowering import lower_program, LoweringOptions
from repro.symbolic import LinearExpr

from ..conftest import lower


def checks_of(function):
    return [inst for inst in function.instructions()
            if isinstance(inst, Check)]


def main_of(source):
    return lower(source).main


class TestPrograms:
    def test_minimal_program(self):
        module = lower("program p\nend program")
        assert module.main is not None
        assert module.main.name == "p"

    def test_input_becomes_param_with_default(self):
        main = main_of("program p\ninput integer :: n = 42\nend program")
        assert [p.name for p in main.params] == ["n"]
        assert main.input_defaults["n"] == 42

    def test_negative_input_default(self):
        main = main_of("program p\ninput integer :: n = -3\nend program")
        assert main.input_defaults["n"] == -3

    def test_subroutine_signature_order(self):
        module = lower("""
program p
  real :: x(5), y(5)
  call s(1, x, y)
end program
subroutine s(n, b, a)
  integer :: n
  real :: a(5), b(5)
end subroutine
""")
        sub = module.functions["s"]
        # array parameters must follow the header order, not decl order
        assert sub.array_params == ["b", "a"]

    def test_call_binds_arrays_positionally(self):
        module = lower("""
program p
  real :: x(5), y(5)
  call s(x, y)
end program
subroutine s(b, a)
  real :: a(5), b(5)
end subroutine
""")
        from repro.ir import Call
        call = next(i for i in module.main.instructions()
                    if isinstance(i, Call))
        assert call.array_args == ["x", "y"]


class TestChecks:
    def test_access_gets_lower_and_upper_checks(self):
        main = main_of("""
program p
  integer :: i
  real :: a(100)
  i = 1
  a(i) = 0.0
end program
""")
        found = checks_of(main)
        assert len(found) == 2
        assert found[0].kind == "lower"
        assert found[1].kind == "upper"

    def test_canonical_form_of_offset_subscript(self):
        main = main_of("""
program p
  input integer :: n = 1
  integer :: a(5:10)
  a(2 * n - 1) = 1
end program
""")
        lower_check, upper_check = checks_of(main)
        # 2n-1 >= 5  ->  -2n <= -6 ; 2n-1 <= 10  ->  2n <= 11
        assert CanonicalCheck.of(lower_check) == \
            CanonicalCheck(LinearExpr({"n": -2}, 0), -6)
        assert CanonicalCheck.of(upper_check) == \
            CanonicalCheck(LinearExpr({"n": 2}, 0), 11)

    def test_symbolic_bound_folds_into_expression(self):
        module = lower("""
program p
  real :: x(5)
  call s(3, x)
end program
subroutine s(n, a)
  integer :: n, i
  real :: a(n)
  i = 1
  a(i) = 0.0
end subroutine
""")
        sub = module.functions["s"]
        upper = [c for c in checks_of(sub) if c.kind == "upper"][0]
        # i <= n  ->  i - n <= 0
        assert upper.linexpr == LinearExpr({"i": 1, "n": -1}, 0)

    def test_multi_dim_checks_per_dimension(self):
        main = main_of("""
program p
  integer :: i, j
  real :: a(10, 0:5)
  i = 1
  j = 1
  a(i, j) = 0.0
end program
""")
        assert len(checks_of(main)) == 4

    def test_constant_subscript_compile_time_check(self):
        main = main_of("""
program p
  real :: a(10)
  a(3) = 0.0
end program
""")
        for check in checks_of(main):
            assert check.linexpr.is_constant()

    def test_nonaffine_subscript_checks_temp(self):
        main = main_of("""
program p
  integer :: i, j
  real :: a(100)
  i = 2
  j = 3
  a(i * j) = 0.0
end program
""")
        upper = [c for c in checks_of(main) if c.kind == "upper"][0]
        symbols = upper.linexpr.symbols()
        assert len(symbols) == 1
        assert symbols[0].startswith("t")

    def test_shared_nonlinear_subscripts_share_family(self):
        main = main_of("""
program p
  integer :: i, j
  real :: a(100), b(100)
  i = 2
  j = 3
  a(i * j) = b(i * j)
end program
""")
        uppers = [c for c in checks_of(main) if c.kind == "upper"]
        assert uppers[0].linexpr == uppers[1].linexpr

    def test_checks_can_be_disabled(self):
        module = lower("""
program p
  integer :: i
  real :: a(10)
  i = 1
  a(i) = 0.0
end program
""", insert_checks=False)
        assert checks_of(module.main) == []

    def test_checks_precede_access(self):
        main = main_of("""
program p
  integer :: i
  real :: a(10)
  i = 1
  a(i) = a(i) + 1.0
end program
""")
        instructions = list(main.instructions())
        first_access = next(idx for idx, inst in enumerate(instructions)
                            if isinstance(inst, (Load, Store)))
        assert isinstance(instructions[first_access - 1], Check)


class TestSemanticErrors:
    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            lower("program p\ni = 1\nend program")

    def test_undeclared_array(self):
        with pytest.raises(SemanticError):
            lower("program p\ninteger :: i\ni = 1\na(i) = 1\nend program")

    def test_duplicate_declaration(self):
        with pytest.raises(SemanticError):
            lower("program p\ninteger :: i\nreal :: i\nend program")

    def test_rank_mismatch(self):
        with pytest.raises(SemanticError):
            lower("program p\ninteger :: i\nreal :: a(5, 5)\n"
                  "i = 1\na(i) = 1.0\nend program")

    def test_real_do_variable(self):
        with pytest.raises(SemanticError):
            lower("program p\nreal :: x\ndo x = 1, 5\nend do\nend program")

    def test_zero_step(self):
        with pytest.raises(SemanticError):
            lower("program p\ninteger :: i\ndo i = 1, 5, 0\nend do\n"
                  "end program")

    def test_bound_variable_immutable(self):
        with pytest.raises(SemanticError):
            lower("""
program p
  input integer :: n = 5
  real :: x(5)
  call s(n, x)
end program
subroutine s(n, a)
  integer :: n
  real :: a(n)
  n = 10
end subroutine
""")

    def test_nonlogical_if_condition(self):
        with pytest.raises(SemanticError):
            lower("program p\ninteger :: i\ni = 1\nif (i) then\nend if\n"
                  "end program")

    def test_unknown_subroutine(self):
        with pytest.raises(SemanticError):
            lower("program p\ncall nope\nend program")

    def test_array_arg_must_be_name(self):
        with pytest.raises(SemanticError):
            lower("""
program p
  real :: x(5)
  call s(1)
end program
subroutine s(a)
  real :: a(5)
end subroutine
""")

    def test_input_only_in_main(self):
        with pytest.raises(SemanticError):
            lower("""
program p
end program
subroutine s()
  input integer :: n = 1
end subroutine
""")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            lower("""
program p
  call s(1, 2)
end program
subroutine s(n)
  integer :: n
end subroutine
""")


class TestControlFlowShapes:
    def test_do_loop_blocks(self):
        main = main_of("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
end program
""")
        names = [b.name for b in main.blocks]
        assert any(n.startswith("do_head") for n in names)
        assert any(n.startswith("do_body") for n in names)
        assert any(n.startswith("do_exit") for n in names)

    def test_unreachable_code_removed(self):
        main = main_of("""
program p
  integer :: i
  return
  i = 1
end program
""")
        # the dead assignment's block is unreachable and dropped
        from repro.ir import Assign
        assigns = [inst for inst in main.instructions()
                   if isinstance(inst, Assign)]
        assert assigns == []

    def test_if_without_else(self):
        main = main_of("""
program p
  integer :: i
  i = 0
  if (i < 1) then
    i = 2
  end if
  i = 3
end program
""")
        assert any(b.name.startswith("if_then") for b in main.blocks)

    def test_return_in_both_arms(self):
        main = main_of("""
program p
  integer :: i
  i = 0
  if (i < 1) then
    return
  else
    return
  end if
end program
""")
        # no fall-through join block needed
        assert all(b.terminator is not None for b in main.blocks)


class TestTypeHandling:
    def test_mixed_arithmetic_inserts_conversion(self):
        main = main_of("""
program p
  integer :: i
  real :: x
  i = 2
  x = i + 1.5
end program
""")
        from repro.ir import UnOp
        converts = [inst for inst in main.instructions()
                    if isinstance(inst, UnOp) and inst.op == "itor"]
        assert converts

    def test_store_coerces_to_element_type(self):
        main = main_of("""
program p
  real :: x
  integer :: a(5)
  x = 2.5
  a(1) = x
end program
""")
        from repro.ir import UnOp
        converts = [inst for inst in main.instructions()
                    if isinstance(inst, UnOp) and inst.op == "rtoi"]
        assert converts

    def test_lower_program_convenience(self):
        module = lower_program("program p\nend program")
        assert module.main.name == "p"
