! fuzz-corpus entry
! seed: 263
! kind: count-regression
! config: PRX-LLS'
! detail: optimized executed 14 effective checks (14 total - 0 guard-skipped) vs 12 naive checks
program fuzz
  integer :: i0
  integer :: a1(8)
  do i0 = 3, -3, -3
    a1(i0+4) = max(i0, 0)
  end do
end program
