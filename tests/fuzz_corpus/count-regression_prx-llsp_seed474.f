! fuzz-corpus entry
! seed: 474
! kind: count-regression
! config: PRX-LLS'
! detail: optimized executed 27 effective checks (27 total - 0 guard-skipped) vs 24 naive checks
program fuzz
  input integer :: n = 4
  integer :: i0
  integer :: a0(0:6, n)
  do i0 = 2, n
    a0(2*i0-3, -1*i0+5) = i0 + 1
  end do
end program
