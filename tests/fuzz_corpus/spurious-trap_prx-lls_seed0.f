! fuzz-corpus entry
! seed: 0
! kind: spurious-trap
! config: PRX-LLS
! detail: hoisted check must stay behind the loop's at-least-once guard for a zero-trip loop
program fuzz
  input integer :: n = 0
  integer :: i
  integer :: a0(5)
  do i = 1, n
    a0(i + 100) = 1
  end do
  print 0
end program
