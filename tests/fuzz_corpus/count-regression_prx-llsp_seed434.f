! fuzz-corpus entry
! seed: 434
! kind: count-regression
! config: PRX-LLS'
! detail: optimized executed 10 effective checks (10 total - 0 guard-skipped) vs 8 naive checks
program fuzz
  input integer :: n = 6
  integer :: i0
  integer :: a0(9, n)
  do i0 = 2, n, 3
    a0(i0, -1*i0+8) = i0 * 2
  end do
end program
