! fuzz-corpus entry
! seed: 0
! kind: baseline-engine
! config: <baseline>
! detail: interp vs back-end check counters diverged on a trapping run (per-block accounting)
program fuzz
  input integer :: n = 6
  integer :: i
  integer :: a0(5)
  do i = 1, n
    a0(i) = i
  end do
  print a0(1)
end program
