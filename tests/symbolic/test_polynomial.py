"""Unit and property tests for multivariate polynomials."""

import pytest
from hypothesis import given, strategies as st

from repro.symbolic import LinearExpr, Polynomial

names = st.sampled_from(["h", "i", "n"])
small_ints = st.integers(min_value=-9, max_value=9)


def poly_strategy(depth=2):
    base = st.one_of(
        st.builds(Polynomial.constant, small_ints),
        st.builds(Polynomial.symbol, names),
    )
    if depth == 0:
        return base
    sub = poly_strategy(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: a + b, sub, sub),
        st.builds(lambda a, b: a - b, sub, sub),
        st.builds(lambda a, b: a * b, sub, sub),
    )


polys = poly_strategy()
envs = st.fixed_dictionaries({n: st.integers(-5, 5)
                              for n in ["h", "i", "n"]})


class TestConstruction:
    def test_constant(self):
        assert Polynomial.constant(5).constant_value() == 5

    def test_zero_constant_is_zero(self):
        assert Polynomial.constant(0).is_zero()

    def test_symbol(self):
        poly = Polynomial.symbol("h")
        assert poly.symbols() == ("h",)
        assert poly.total_degree() == 1

    def test_from_linear(self):
        poly = Polynomial.from_linear(LinearExpr({"i": 2, "j": 1}, 3))
        assert poly.evaluate({"i": 1, "j": 2}) == 7

    def test_constant_value_of_nonconstant_raises(self):
        with pytest.raises(ValueError):
            Polynomial.symbol("h").constant_value()


class TestArithmetic:
    def test_product_degree(self):
        h = Polynomial.symbol("h")
        assert (h * h).total_degree() == 2

    def test_distribution(self):
        h = Polynomial.symbol("h")
        one = Polynomial.constant(1)
        assert h * (h + one) == h * h + h

    def test_mixed_symbol_product(self):
        h = Polynomial.symbol("h")
        n = Polynomial.symbol("n")
        product = h * n
        assert product.degree_in(["h"]) == 1
        assert product.degree_in(["n"]) == 1
        assert product.total_degree() == 2

    def test_coercion_from_int(self):
        assert Polynomial.symbol("h") + 1 == \
            Polynomial.symbol("h") + Polynomial.constant(1)

    def test_coercion_from_linear(self):
        lin = LinearExpr({"h": 1}, 1)
        assert Polynomial.symbol("h") + lin == \
            Polynomial.symbol("h") * 2 + 1

    def test_rsub(self):
        poly = 3 - Polynomial.symbol("h")
        assert poly.evaluate({"h": 1}) == 2


class TestLinearConversion:
    def test_linear_roundtrip(self):
        lin = LinearExpr({"i": 2, "n": -1}, 7)
        assert Polynomial.from_linear(lin).to_linear() == lin

    def test_is_linear(self):
        h = Polynomial.symbol("h")
        assert (h * 3 + 1).is_linear()
        assert not (h * h).is_linear()

    def test_to_linear_rejects_quadratic(self):
        h = Polynomial.symbol("h")
        with pytest.raises(ValueError):
            (h * h).to_linear()


class TestSubstitution:
    def test_substitute_constant(self):
        h = Polynomial.symbol("h")
        poly = h * h + h * 2 + 1
        assert poly.substitute("h", 3).constant_value() == 16

    def test_substitute_polynomial(self):
        h = Polynomial.symbol("h")
        n = Polynomial.symbol("n")
        result = (h * h).substitute("h", n + 1)
        assert result == n * n + n * 2 + 1

    def test_substitute_missing_symbol(self):
        n = Polynomial.symbol("n")
        assert n.substitute("h", 5) == n


class TestDegrees:
    def test_degree_in_subset(self):
        h = Polynomial.symbol("h")
        n = Polynomial.symbol("n")
        poly = h * h * n + n
        assert poly.degree_in(["h"]) == 2
        assert poly.degree_in(["n"]) == 1
        assert poly.degree_in(["h", "n"]) == 3

    def test_degree_of_constant(self):
        assert Polynomial.constant(3).total_degree() == 0


class TestProperties:
    @given(polys, polys, envs)
    def test_addition_matches_evaluation(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(polys, polys, envs)
    def test_multiplication_matches_evaluation(self, a, b, env):
        assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)

    @given(polys, polys, envs)
    def test_subtraction_matches_evaluation(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(polys, polys)
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    @given(polys, polys, polys)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polys, envs)
    def test_substitution_matches_evaluation(self, a, env):
        substituted = a.substitute("h", 2)
        inner = dict(env)
        inner["h"] = 2
        assert substituted.evaluate(env) == a.evaluate(inner)
