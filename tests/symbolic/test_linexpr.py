"""Unit and property tests for canonical linear expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.symbolic import LinearExpr, linear_sum

symbols = st.sampled_from(["i", "j", "k", "n", "m"])
coefficients = st.integers(min_value=-50, max_value=50)
linexprs = st.builds(
    LinearExpr,
    st.dictionaries(symbols, coefficients, max_size=4),
    coefficients,
)
envs = st.fixed_dictionaries({name: st.integers(-100, 100)
                              for name in ["i", "j", "k", "n", "m"]})


class TestConstruction:
    def test_constant(self):
        expr = LinearExpr.constant(7)
        assert expr.is_constant()
        assert expr.const == 7

    def test_symbol(self):
        expr = LinearExpr.symbol("n")
        assert expr.coefficient("n") == 1
        assert expr.const == 0

    def test_symbol_with_coefficient(self):
        expr = LinearExpr.symbol("n", 3)
        assert expr.coefficient("n") == 3

    def test_zero(self):
        assert LinearExpr.zero().is_zero()
        assert not LinearExpr.zero()

    def test_zero_coefficients_dropped(self):
        expr = LinearExpr({"i": 0, "j": 2}, 1)
        assert expr.symbols() == ("j",)

    def test_duplicate_terms_merge(self):
        expr = LinearExpr([("i", 2), ("i", 3)], 0)
        assert expr.coefficient("i") == 5

    def test_cancelling_terms_vanish(self):
        expr = LinearExpr([("i", 2), ("i", -2)], 0)
        assert expr.is_zero()

    def test_non_integer_coefficient_rejected(self):
        with pytest.raises(TypeError):
            LinearExpr({"i": 1.5}, 0)

    def test_non_integer_constant_rejected(self):
        with pytest.raises(TypeError):
            LinearExpr({}, 0.5)


class TestArithmetic:
    def test_add_expressions(self):
        a = LinearExpr({"i": 1}, 2)
        b = LinearExpr({"i": 2, "j": 1}, -1)
        total = a + b
        assert total.coefficient("i") == 3
        assert total.coefficient("j") == 1
        assert total.const == 1

    def test_add_int(self):
        assert (LinearExpr.symbol("i") + 5).const == 5

    def test_radd(self):
        assert (5 + LinearExpr.symbol("i")).const == 5

    def test_sub(self):
        diff = LinearExpr.symbol("i") - LinearExpr.symbol("i")
        assert diff.is_zero()

    def test_rsub(self):
        expr = 10 - LinearExpr.symbol("i")
        assert expr.coefficient("i") == -1
        assert expr.const == 10

    def test_neg(self):
        expr = -LinearExpr({"i": 2}, 3)
        assert expr.coefficient("i") == -2
        assert expr.const == -3

    def test_mul_scalar(self):
        expr = LinearExpr({"i": 2}, 3) * 4
        assert expr.coefficient("i") == 8
        assert expr.const == 12

    def test_mul_zero(self):
        assert (LinearExpr.symbol("i") * 0).is_zero()

    def test_linear_sum(self):
        total = linear_sum([LinearExpr.symbol("i"), 3,
                            LinearExpr.symbol("i", 2)])
        assert total.coefficient("i") == 3
        assert total.const == 3


class TestSubstitution:
    def test_substitute_with_int(self):
        expr = LinearExpr({"i": 2, "j": 1}, 1)
        result = expr.substitute("i", 5)
        assert result.coefficient("i") == 0
        assert result.const == 11

    def test_substitute_with_expression(self):
        expr = LinearExpr({"i": 2}, 0)
        result = expr.substitute("i", LinearExpr({"n": 1}, -1))
        assert result.coefficient("n") == 2
        assert result.const == -2

    def test_substitute_missing_symbol_is_noop(self):
        expr = LinearExpr({"i": 1}, 0)
        assert expr.substitute("z", 3) is expr

    def test_rename(self):
        expr = LinearExpr({"i": 2, "j": 1}, 5)
        renamed = expr.rename({"i": "x"})
        assert renamed.coefficient("x") == 2
        assert renamed.coefficient("j") == 1

    def test_rename_merging(self):
        expr = LinearExpr({"i": 2, "j": 3}, 0)
        renamed = expr.rename({"i": "j"})
        assert renamed.coefficient("j") == 5


class TestQueries:
    def test_symbols_sorted(self):
        expr = LinearExpr({"z": 1, "a": 1, "m": 1}, 0)
        assert expr.symbols() == ("a", "m", "z")

    def test_drop_const(self):
        expr = LinearExpr({"i": 1}, 9)
        assert expr.drop_const().const == 0
        assert expr.drop_const().coefficient("i") == 1

    def test_evaluate(self):
        expr = LinearExpr({"i": 2, "j": -1}, 4)
        assert expr.evaluate({"i": 3, "j": 1}) == 9

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            LinearExpr.symbol("i").evaluate({})

    def test_str_canonical_order(self):
        expr = LinearExpr({"j": -1, "i": 2}, 3)
        assert str(expr) == "2*i-j+3"

    def test_str_zero(self):
        assert str(LinearExpr.zero()) == "0"

    def test_equality_and_hash(self):
        a = LinearExpr({"i": 1, "j": 2}, 3)
        b = LinearExpr({"j": 2, "i": 1}, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert LinearExpr({"i": 1}, 0) != LinearExpr({"i": 1}, 1)


class TestProperties:
    @given(linexprs, linexprs, envs)
    def test_addition_matches_evaluation(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(linexprs, linexprs, envs)
    def test_subtraction_matches_evaluation(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(linexprs, coefficients, envs)
    def test_scaling_matches_evaluation(self, a, c, env):
        assert (a * c).evaluate(env) == a.evaluate(env) * c

    @given(linexprs, envs)
    def test_negation_matches_evaluation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(linexprs, linexprs)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(linexprs, linexprs, linexprs)
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(linexprs)
    def test_self_subtraction_is_zero(self, a):
        assert (a - a).is_zero()

    @given(linexprs, linexprs, envs)
    def test_substitution_matches_evaluation(self, a, repl, env):
        substituted = a.substitute("i", repl)
        inner = dict(env)
        inner["i"] = repl.evaluate(env)
        assert substituted.evaluate(env) == a.evaluate(inner)

    @given(linexprs)
    def test_hash_consistent_with_eq(self, a):
        clone = LinearExpr(dict(a.terms), a.const)
        assert a == clone
        assert hash(a) == hash(clone)
