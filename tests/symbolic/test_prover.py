"""Unit and property tests for the linear-inequality prover.

The prover's contract is one-sided: a True answer from
:func:`entails`/:func:`infeasible` is load-bearing (the eliminator
deletes a check on its word), a False answer is merely "not proved".
The property campaigns here attack exactly that asymmetry -- every
positive verdict on a random system is cross-examined against
brute-force integer enumeration, which must never find a countermodel.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.symbolic import LinearExpr, entails, infeasible
from repro.symbolic.prover import MAX_SYMBOLS

#: Seeded-random soundness campaign size (mirrors the interval tests).
_TRIALS = 200
#: Brute-force domain per symbol; systems are kept to <= 3 symbols so
#: enumeration stays exhaustive over the sampled grid.
_DOMAIN = range(-4, 5)
_SYMBOLS = ("i", "j", "n")


def _expr(terms, const=0):
    return LinearExpr(terms, const)


def _holds(inequality, env):
    expr, bound = inequality
    return expr.evaluate(env) <= bound


def _models(inequalities):
    """Every grid assignment satisfying all inequalities."""
    for values in itertools.product(_DOMAIN, repeat=len(_SYMBOLS)):
        env = dict(zip(_SYMBOLS, values))
        if all(_holds(ineq, env) for ineq in inequalities):
            yield env


class TestEntailsUnit:
    def test_reflexive(self):
        fact = (_expr({"i": 1, "n": -1}), 0)
        assert entails([fact], fact)

    def test_weakened_bound(self):
        assert entails([(_expr({"i": 1, "n": -1}), -1)],
                       (_expr({"i": 1, "n": -1}), 0))

    def test_strengthened_bound_not_proved(self):
        assert not entails([(_expr({"i": 1, "n": -1}), 0)],
                           (_expr({"i": 1, "n": -1}), -1))

    def test_transitivity(self):
        # i <= j and j <= n entail i <= n
        hyps = [(_expr({"i": 1, "j": -1}), 0),
                (_expr({"j": 1, "n": -1}), 0)]
        assert entails(hyps, (_expr({"i": 1, "n": -1}), 0))

    def test_no_free_lunch(self):
        # i <= j alone says nothing about i vs n
        assert not entails([(_expr({"i": 1, "j": -1}), 0)],
                           (_expr({"i": 1, "n": -1}), 0))

    def test_integer_tightening(self):
        # over the rationals 2i <= 2n+1 only gives i <= n + 1/2;
        # over the integers it gives i <= n
        assert entails([(_expr({"i": 2, "n": -2}), 1)],
                       (_expr({"i": 1, "n": -1}), 0))

    def test_scaled_combination(self):
        # i + j <= n and -j <= 0 entail i <= n
        hyps = [(_expr({"i": 1, "j": 1, "n": -1}), 0),
                (_expr({"j": -1}), 0)]
        assert entails(hyps, (_expr({"i": 1, "n": -1}), 0))

    def test_constant_goal(self):
        assert entails([], (LinearExpr.constant(3), 5))
        assert not entails([], (LinearExpr.constant(7), 5))

    def test_empty_hypotheses_symbolic_goal(self):
        assert not entails([], (_expr({"i": 1}), 0))

    def test_goal_constant_offset(self):
        # i - n <= -1 entails i - n <= 0 (the family-edge shape the
        # eliminator feeds after inlining)
        assert entails([(_expr({"i": 1, "n": -1}), -1)],
                       (_expr({"i": 1, "n": -1}), 0))


class TestInfeasibleUnit:
    def test_constant_contradiction(self):
        assert infeasible([(LinearExpr.constant(1), 0)])

    def test_opposed_bounds(self):
        # i <= 0 and -i <= -1 (i >= 1)
        assert infeasible([(_expr({"i": 1}), 0), (_expr({"i": -1}), -1)])

    def test_satisfiable_band(self):
        assert not infeasible([(_expr({"i": 1}), 5),
                               (_expr({"i": -1}), 0)])

    def test_integer_gap(self):
        # 2i <= 1 and -2i <= -1 has the rational solution i = 1/2 but
        # no integer one; the tightening must catch it
        assert infeasible([(_expr({"i": 2}), 1), (_expr({"i": -2}), -1)])

    def test_empty_system(self):
        assert not infeasible([])


class TestCaps:
    def test_symbol_cap_answers_not_proved(self):
        hyps = [(_expr({"x%d" % k: 1}), 0)
                for k in range(MAX_SYMBOLS + 1)]
        goal = (_expr({"x0": 1}), 0)
        # the goal IS a hypothesis, but the system is over the symbol
        # cap: the only acceptable degradation is False, never a crash
        assert entails(hyps, goal) in (True, False)
        assert not infeasible(hyps)

    def test_blowup_capped(self):
        # a dense system whose elimination products exceed the row cap
        rng = random.Random(7)
        hyps = []
        for _ in range(80):
            terms = {s: rng.randint(-3, 3) for s in
                     ("a", "b", "c", "d", "e", "f")}
            hyps.append((_expr(terms), rng.randint(0, 10)))
        # must terminate and stay sound either way
        verdict = infeasible(hyps)
        if verdict:
            for values in itertools.product(range(-3, 4), repeat=6):
                env = dict(zip(("a", "b", "c", "d", "e", "f"), values))
                assert not all(_holds(h, env) for h in hyps)


def _random_system(rng):
    hyps = []
    for _ in range(rng.randint(1, 5)):
        terms = {s: rng.randint(-3, 3) for s in _SYMBOLS
                 if rng.random() < 0.7}
        hyps.append((_expr(terms, rng.randint(-2, 2)),
                     rng.randint(-6, 6)))
    goal_terms = {s: rng.randint(-3, 3) for s in _SYMBOLS
                  if rng.random() < 0.7}
    goal = (_expr(goal_terms, rng.randint(-2, 2)), rng.randint(-6, 6))
    return hyps, goal


class TestSoundnessCampaign:
    """Seeded random systems vs brute-force integer enumeration."""

    def test_entails_never_proves_with_countermodel(self):
        rng = random.Random(0xC0FFEE)
        proved = 0
        for trial in range(_TRIALS):
            hyps, goal = _random_system(rng)
            if not entails(hyps, goal):
                continue
            proved += 1
            for env in _models(hyps):
                assert _holds(goal, env), (
                    "trial %d: prover claimed %r |= %r but %r is a "
                    "countermodel" % (trial, hyps, goal, env))
        # the campaign must actually exercise the positive direction
        assert proved >= 10

    def test_infeasible_never_claims_empty_with_model(self):
        rng = random.Random(0xBEEF)
        claimed = 0
        for trial in range(_TRIALS):
            hyps, _ = _random_system(rng)
            if not infeasible(hyps):
                continue
            claimed += 1
            for env in _models(hyps):
                raise AssertionError(
                    "trial %d: prover claimed %r infeasible but %r "
                    "satisfies it" % (trial, hyps, env))
        assert claimed >= 5

    def test_semantic_truths_with_models_in_grid(self):
        """Relative-completeness sanity: when the goal holds at every
        grid model of a *satisfiable* small system and the system
        pins every goal symbol, the prover usually agrees.  Not a hard
        guarantee (the grid is finite), so this only requires the
        prover to find a healthy fraction."""
        rng = random.Random(0xFACADE)
        checked = agreed = 0
        for _ in range(_TRIALS):
            hyps, goal = _random_system(rng)
            models = list(_models(hyps))
            if not models or len(models) > 200:
                continue  # empty or too unconstrained to trust the grid
            if not all(_holds(goal, env) for env in models):
                continue
            checked += 1
            if entails(hyps, goal):
                agreed += 1
        assert checked >= 10
        assert agreed >= checked // 3


coeff = st.integers(min_value=-3, max_value=3)
small_exprs = st.builds(
    _expr,
    st.dictionaries(st.sampled_from(_SYMBOLS), coeff, max_size=3),
    coeff)
inequalities = st.tuples(small_exprs, st.integers(-6, 6))


class TestSoundnessProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(inequalities, min_size=1, max_size=4), inequalities)
    def test_positive_verdicts_hold_on_grid(self, hyps, goal):
        if entails(hyps, goal):
            for env in _models(hyps):
                assert _holds(goal, env)

    @settings(max_examples=200, deadline=None)
    @given(st.lists(inequalities, min_size=1, max_size=4))
    def test_infeasible_verdicts_hold_on_grid(self, hyps):
        if infeasible(hyps):
            assert not list(_models(hyps))
