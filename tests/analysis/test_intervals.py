"""Tests for interval (value-range) analysis."""

from hypothesis import given, strategies as st

from repro.analysis.intervals import Interval, IntervalAnalysis
from repro.symbolic import LinearExpr

from ..conftest import lower_ssa

ints = st.integers(-100, 100)


def intervals_strategy():
    return st.builds(lambda a, b: Interval(min(a, b), max(a, b)), ints, ints)


def analyze(source):
    module = lower_ssa(source)
    return IntervalAnalysis(module.main), module.main


class TestIntervalArithmetic:
    def test_add(self):
        assert Interval(1, 3).add(Interval(10, 20)) == Interval(11, 23)

    def test_sub(self):
        assert Interval(1, 3).sub(Interval(10, 20)) == Interval(-19, -7)

    def test_neg(self):
        assert Interval(1, 3).neg() == Interval(-3, -1)

    def test_mul_signs(self):
        assert Interval(-2, 3).mul(Interval(-5, 4)) == Interval(-15, 12)

    def test_scale_negative(self):
        assert Interval(1, 3).scale(-2) == Interval(-6, -2)

    def test_abs(self):
        assert Interval(-5, 3).abs_value() == Interval(0, 5)
        assert Interval(2, 4).abs_value() == Interval(2, 4)

    def test_join(self):
        assert Interval(1, 3).join(Interval(5, 9)) == Interval(1, 9)

    def test_widen(self):
        from repro.analysis.intervals import NEG_INF, POS_INF
        widened = Interval(1, 3).widen(Interval(0, 10))
        assert widened.lo == NEG_INF
        assert widened.hi == POS_INF
        stable = Interval(1, 3).widen(Interval(1, 3))
        assert stable == Interval(1, 3)

    def test_infinity_times_zero(self):
        from repro.analysis.intervals import POS_INF
        assert Interval(0, POS_INF).mul(Interval(0, 0)) == Interval(0, 0)

    @given(intervals_strategy(), intervals_strategy(), ints, ints)
    def test_add_is_sound(self, a, b, x, y):
        if a.lo <= x <= a.hi and b.lo <= y <= b.hi:
            result = a.add(b)
            assert result.lo <= x + y <= result.hi

    @given(intervals_strategy(), intervals_strategy(), ints, ints)
    def test_mul_is_sound(self, a, b, x, y):
        if a.lo <= x <= a.hi and b.lo <= y <= b.hi:
            result = a.mul(b)
            assert result.lo <= x * y <= result.hi


class TestAnalysis:
    def test_constants_propagate(self):
        analysis, main = analyze("""
program p
  integer :: a, b
  a = 4
  b = a * 3 + 1
  print b
end program
""")
        exit_blocks = [b for b in main.blocks if not b.successors()]
        interval = analysis.interval_at(exit_blocks[0],
                                        len(exit_blocks[0].instructions),
                                        "b.1")
        assert interval == Interval(13, 13)

    def test_branch_join(self):
        analysis, main = analyze("""
program p
  input integer :: c = 1
  integer :: a
  if (c > 0) then
    a = 1
  else
    a = 5
  end if
  print a
end program
""")
        join = next(b for b in main.blocks if b.name.startswith("if_exit"))
        phi = join.phis()[0]
        assert analysis.env_at(join)[phi.dest.name] == Interval(1, 5)

    def test_loop_index_lower_bound(self):
        analysis, main = analyze("""
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + 1
  end do
  print s
end program
""")
        body = next(b for b in main.blocks if b.name.startswith("do_body"))
        i_name = [p.dest.name for p in
                  next(b for b in main.blocks
                       if b.name.startswith("do_head")).phis()
                  if p.dest.base_name() == "i"][0]
        interval = analysis.env_at(body).get(i_name, Interval.top())
        assert interval.lo == 1  # widening keeps the stable lower bound

    def test_branch_refinement_constant_bound(self):
        analysis, main = analyze("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end program
""")
        body = next(b for b in main.blocks if b.name.startswith("do_body"))
        header = next(b for b in main.blocks
                      if b.name.startswith("do_head"))
        i_name = [p.dest.name for p in header.phis()
                  if p.dest.base_name() == "i"][0]
        interval = analysis.env_at(body).get(i_name, Interval.top())
        # refinement on the taken edge clamps i <= 10
        assert interval == Interval(1, 10)

    def test_mod_bounds(self):
        analysis, main = analyze("""
program p
  input integer :: x = 7
  integer :: r
  r = mod(abs(x), 5)
  print r
end program
""")
        exit_blocks = [b for b in main.blocks if not b.successors()]
        interval = analysis.interval_at(exit_blocks[0],
                                        len(exit_blocks[0].instructions),
                                        "r.1")
        assert interval == Interval(0, 4)

    def test_linexpr_interval(self):
        analysis, main = analyze("""
program p
  integer :: a
  a = 4
  print a
end program
""")
        exit_block = main.entry
        expr = LinearExpr({"a.1": 2}, 3)
        interval = analysis.linexpr_interval(
            exit_block, len(exit_block.instructions), expr)
        assert interval == Interval(11, 11)

    def test_terminates_on_irregular_loops(self):
        analysis, main = analyze("""
program p
  integer :: i, j
  i = 0
  j = 100
  while (i < j) do
    i = i + 3
    j = j - 2
  end while
  print i
end program
""")
        assert analysis.entry_env  # reached a fixpoint without hanging


# -- seeded property tests (stdlib random; no hypothesis dependency) ----
#
# Each operation is checked against concrete sampling: draw intervals
# (10% chance of an infinite bound per side), draw members, and assert
# the abstract result contains the concrete one.  Seeded, so a failure
# reproduces exactly; intervals with +-inf bounds are sampled through a
# finite +-10^6 window.

import random  # noqa: E402

from repro.analysis.intervals import NEG_INF, POS_INF  # noqa: E402

_TRIALS = 200


def _random_interval(rng):
    lo = NEG_INF if rng.random() < 0.1 else rng.randint(-50, 50)
    hi = POS_INF if rng.random() < 0.1 else rng.randint(-50, 50)
    if lo > hi:
        lo, hi = hi, lo
    return Interval(lo, hi)


def _sample(rng, interval):
    lo, hi = interval.lo, interval.hi
    if lo == NEG_INF:
        lo = min(-10 ** 6, hi)
    if hi == POS_INF:
        hi = max(10 ** 6, lo)
    return rng.randint(int(lo), int(hi))


def _contains(interval, value):
    return interval.lo <= value <= interval.hi


class TestPropertySoundness:
    def _cases(self, seed):
        rng = random.Random(seed)
        for _ in range(_TRIALS):
            a, b = _random_interval(rng), _random_interval(rng)
            yield rng, a, b, _sample(rng, a), _sample(rng, b)

    def test_add_sound(self):
        for rng, a, b, x, y in self._cases(101):
            assert _contains(a.add(b), x + y), (a, b, x, y)

    def test_sub_sound(self):
        for rng, a, b, x, y in self._cases(102):
            assert _contains(a.sub(b), x - y), (a, b, x, y)

    def test_neg_sound(self):
        for rng, a, _, x, _ in self._cases(103):
            assert _contains(a.neg(), -x), (a, x)

    def test_mul_sound(self):
        for rng, a, b, x, y in self._cases(104):
            assert _contains(a.mul(b), x * y), (a, b, x, y)

    def test_scale_sound(self):
        for rng, a, _, x, _ in self._cases(105):
            factor = rng.randint(-5, 5)
            assert _contains(a.scale(factor), x * factor), (a, x, factor)

    def test_scale_zero_kills_infinities(self):
        # the 0 * inf = 0 convention: scaling any interval by 0 is [0,0]
        for rng, a, _, _, _ in self._cases(106):
            assert a.scale(0) == Interval(0, 0), a

    def test_abs_sound(self):
        for rng, a, _, x, _ in self._cases(107):
            assert _contains(a.abs_value(), abs(x)), (a, x)

    def test_min_max_sound(self):
        for rng, a, b, x, y in self._cases(108):
            assert _contains(a.min_with(b), min(x, y)), (a, b, x, y)
            assert _contains(a.max_with(b), max(x, y)), (a, b, x, y)

    def test_join_contains_both_members(self):
        for rng, a, b, x, y in self._cases(109):
            joined = a.join(b)
            assert _contains(joined, x) and _contains(joined, y)

    def test_widen_is_an_upper_bound_of_join(self):
        # widening must cover everything joining would; that is what
        # makes it a sound (if blunt) fixpoint accelerator
        for rng, a, b, x, y in self._cases(110):
            widened = a.widen(b)
            joined = a.join(b)
            assert widened.lo <= joined.lo, (a, b)
            assert widened.hi >= joined.hi, (a, b)
            assert _contains(widened, x) and _contains(widened, y)

    def test_widen_is_stable_on_no_growth(self):
        for rng, a, _, _, _ in self._cases(111):
            assert a.widen(a) == a

    def test_clamp_keeps_agreeing_members(self):
        for rng, a, b, x, _ in self._cases(112):
            bound = rng.randint(-60, 60)
            if x <= bound:
                assert _contains(a.clamp_upper(bound), x), (a, x, bound)
            if x >= bound:
                assert _contains(a.clamp_lower(bound), x), (a, x, bound)
