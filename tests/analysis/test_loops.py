"""Tests for natural-loop detection, the loop forest, and preheaders."""

from repro.analysis import LoopForest
from repro.ir import CondJump, Const, Function, Jump, Return

from ..conftest import lower_ssa


def nested_loops_source():
    return """
program nest
  input integer :: n = 4
  integer :: i, j, s
  s = 0
  do i = 1, n
    do j = 1, n
      s = s + 1
    end do
  end do
  print s
end program
"""


class TestDetection:
    def test_single_loop(self, loop_program):
        module = lower_ssa(loop_program)
        forest = LoopForest(module.main)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert loop.header.name.startswith("do_head")
        assert len(loop.latches) == 1

    def test_nested_loops(self):
        module = lower_ssa(nested_loops_source())
        forest = LoopForest(module.main)
        assert len(forest.loops) == 2
        inner = [lp for lp in forest.loops if lp.parent is not None]
        assert len(inner) == 1
        assert inner[0].parent in forest.loops

    def test_depths(self):
        module = lower_ssa(nested_loops_source())
        forest = LoopForest(module.main)
        depths = sorted(loop.depth for loop in forest.loops)
        assert depths == [1, 2]

    def test_inner_to_outer_order(self):
        module = lower_ssa(nested_loops_source())
        forest = LoopForest(module.main)
        order = forest.inner_to_outer()
        assert order[0].depth == 2
        assert order[1].depth == 1

    def test_innermost_lookup(self):
        module = lower_ssa(nested_loops_source())
        forest = LoopForest(module.main)
        inner = forest.inner_to_outer()[0]
        body_blocks = [b for b in inner.blocks if b is not inner.header]
        assert body_blocks
        assert forest.innermost(body_blocks[0]) is inner

    def test_no_loops(self):
        module = lower_ssa("program p\ninteger :: i\ni = 1\nend program")
        assert LoopForest(module.main).loops == []

    def test_while_loop_detected(self):
        module = lower_ssa("""
program p
  integer :: i
  i = 0
  while (i < 5) do
    i = i + 1
  end while
  print i
end program
""")
        forest = LoopForest(module.main)
        assert len(forest.loops) == 1

    def test_exit_edges(self, loop_program):
        module = lower_ssa(loop_program)
        forest = LoopForest(module.main)
        edges = forest.loops[0].exit_edges()
        assert len(edges) == 1
        inside, outside = edges[0]
        assert inside is forest.loops[0].header
        assert outside not in forest.loops[0].blocks


class TestPreheaders:
    def test_lowered_loops_have_preheaders(self, loop_program):
        module = lower_ssa(loop_program)
        forest = LoopForest(module.main)
        pre = forest.preheader(forest.loops[0])
        assert pre is not None
        assert pre not in forest.loops[0].blocks

    def test_get_or_create_returns_existing(self, loop_program):
        module = lower_ssa(loop_program)
        forest = LoopForest(module.main)
        existing = forest.preheader(forest.loops[0])
        assert forest.get_or_create_preheader(forest.loops[0]) is existing

    def test_create_when_entry_is_branch(self):
        # hand-build a loop whose entry edge comes from a conditional
        f = Function("f", is_main=True)
        entry = f.new_block("entry")
        header = f.new_block("header")
        other = f.new_block("other")
        body = f.new_block("body")
        exit_block = f.new_block("exit")
        entry.append(CondJump(Const(True), header, other))
        other.append(Return())
        header.append(CondJump(Const(True), body, exit_block))
        body.append(Jump(header))
        exit_block.append(Return())
        forest = LoopForest(f)
        loop = forest.loops[0]
        assert forest.preheader(loop) is None
        pre = forest.get_or_create_preheader(loop)
        assert pre.successors() == [header]
        assert entry.successors()[0] is pre
        # idempotent afterwards
        assert forest.preheader(loop) is pre

    def test_inner_preheader_inside_outer_loop(self):
        module = lower_ssa(nested_loops_source())
        forest = LoopForest(module.main)
        inner = forest.inner_to_outer()[0]
        outer = forest.inner_to_outer()[1]
        pre = forest.get_or_create_preheader(inner)
        assert pre in outer.blocks
