"""Tests for the generic dataflow framework and classic analyses."""

from repro.analysis import (available_expressions, live_variables,
                            reaching_definitions, reverse_postorder)
from repro.analysis.availexpr import expr_key
from repro.ir import BinOp

from ..conftest import lower, lower_ssa


class TestReversePostorder:
    def test_entry_first(self, loop_program):
        main = lower_ssa(loop_program).main
        order = reverse_postorder(main)
        assert order[0] is main.entry

    def test_covers_reachable_blocks(self, loop_program):
        main = lower_ssa(loop_program).main
        order = reverse_postorder(main)
        assert set(order) == set(main.reachable_blocks())

    def test_predecessor_before_successor_for_acyclic(self):
        main = lower_ssa("""
program p
  integer :: i
  i = 0
  if (i < 1) then
    i = 1
  else
    i = 2
  end if
  print i
end program
""").main
        order = reverse_postorder(main)
        position = {b: idx for idx, b in enumerate(order)}
        for block in order:
            for succ in block.successors():
                if position[succ] > position[block]:
                    continue
                # only back edges may violate the ordering; none here
                raise AssertionError("acyclic CFG out of order")


class TestLiveness:
    def test_loop_variable_live_around_loop(self, loop_program):
        main = lower(loop_program).main
        result = live_variables(main)
        header = next(b for b in main.blocks if b.name.startswith("do_head"))
        assert "i" in result.in_facts[header]

    def test_dead_after_last_use(self):
        main = lower("""
program p
  integer :: a, b
  a = 1
  b = a + 1
  print b
end program
""").main
        result = live_variables(main)
        # nothing is live at function exit
        exit_block = [b for b in main.blocks if not b.successors()][0]
        assert result.out_facts[exit_block] == frozenset()


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        main = lower("""
program p
  integer :: a
  a = 1
  print a
end program
""").main
        result, problem = reaching_definitions(main)
        exit_block = main.blocks[-1]
        names = {name for name, _ in result.out_facts[main.entry]}
        assert "a" in names

    def test_redefinition_kills(self):
        main = lower("""
program p
  integer :: a
  a = 1
  a = 2
  print a
end program
""").main
        result, problem = reaching_definitions(main)
        facts = [site for name, site in result.out_facts[main.entry]
                 if name == "a"]
        assert len(facts) == 1


class TestAvailableExpressions:
    def test_expression_available_after_computation(self):
        main = lower("""
program p
  input integer :: n = 3
  integer :: a, b
  a = n * 5
  b = n * 5
end program
""").main
        result = available_expressions(main)
        keys = [expr_key(i) for i in main.instructions()
                if isinstance(i, BinOp)]
        assert keys[0] is not None

    def test_kill_on_operand_redefinition(self):
        main = lower("""
program p
  integer :: n, a
  n = 1
  a = n * 5
  n = 2
  a = n * 5
end program
""").main
        result = available_expressions(main)
        # at the exit of entry, n*5 was recomputed after the kill so it
        # is available again; the analysis just must terminate and be
        # consistent
        assert result.out_facts[main.entry] is not None
