"""Tests for dominators and dominance frontiers."""

from repro.analysis import DominatorTree
from repro.ir import CondJump, Const, Function, Jump, Return


def diamond():
    f = Function("f", is_main=True)
    entry = f.new_block("entry")
    left = f.new_block("left")
    right = f.new_block("right")
    join = f.new_block("join")
    entry.append(CondJump(Const(True), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Return())
    return f, entry, left, right, join


def loop():
    f = Function("f", is_main=True)
    entry = f.new_block("entry")
    header = f.new_block("header")
    body = f.new_block("body")
    exit_block = f.new_block("exit")
    entry.append(Jump(header))
    header.append(CondJump(Const(True), body, exit_block))
    body.append(Jump(header))
    exit_block.append(Return())
    return f, entry, header, body, exit_block


class TestIdoms:
    def test_diamond_idoms(self):
        f, entry, left, right, join = diamond()
        tree = DominatorTree(f)
        assert tree.idom[entry] is None
        assert tree.idom[left] is entry
        assert tree.idom[right] is entry
        assert tree.idom[join] is entry

    def test_loop_idoms(self):
        f, entry, header, body, exit_block = loop()
        tree = DominatorTree(f)
        assert tree.idom[header] is entry
        assert tree.idom[body] is header
        assert tree.idom[exit_block] is header

    def test_dominates_reflexive(self):
        f, entry, *_ = diamond()
        tree = DominatorTree(f)
        assert tree.dominates(entry, entry)

    def test_dominates_transitive(self):
        f, entry, header, body, _ = loop()
        tree = DominatorTree(f)
        assert tree.dominates(entry, body)
        assert not tree.dominates(body, header)

    def test_strict_dominance(self):
        f, entry, header, *_ = loop()
        tree = DominatorTree(f)
        assert tree.strictly_dominates(entry, header)
        assert not tree.strictly_dominates(entry, entry)

    def test_children(self):
        f, entry, left, right, join = diamond()
        tree = DominatorTree(f)
        assert set(tree.children[entry]) == {left, right, join}


class TestFrontiers:
    def test_diamond_frontier(self):
        f, entry, left, right, join = diamond()
        tree = DominatorTree(f)
        assert tree.frontier[left] == {join}
        assert tree.frontier[right] == {join}
        assert tree.frontier[entry] == set()

    def test_loop_frontier_contains_header(self):
        f, entry, header, body, _ = loop()
        tree = DominatorTree(f)
        assert header in tree.frontier[body]
        assert header in tree.frontier[header]

    def test_preorder_starts_at_entry(self):
        f, entry, *_ = diamond()
        tree = DominatorTree(f)
        order = tree.dom_tree_preorder()
        assert order[0] is entry
        assert len(order) == 4

    def test_nested_diamond(self):
        f, entry, left, right, join = diamond()
        tree = DominatorTree(f)
        # join is dominated only by entry (not by either branch)
        assert not tree.dominates(left, join)
        assert not tree.dominates(right, join)
