"""Tests for postdominator analysis."""

from repro.analysis import PostDominators
from repro.ir import CondJump, Const, Function, Jump, Return

from ..conftest import lower_ssa


def diamond():
    f = Function("f", is_main=True)
    entry = f.new_block("entry")
    left = f.new_block("left")
    right = f.new_block("right")
    join = f.new_block("join")
    entry.append(CondJump(Const(True), left, right))
    left.append(Jump(join))
    right.append(Jump(join))
    join.append(Return())
    return f, entry, left, right, join


class TestPostDominators:
    def test_join_postdominates_everything(self):
        f, entry, left, right, join = diamond()
        pdom = PostDominators(f)
        for block in (entry, left, right, join):
            assert pdom.postdominates(join, block)

    def test_arms_do_not_postdominate_entry(self):
        f, entry, left, right, join = diamond()
        pdom = PostDominators(f)
        assert not pdom.postdominates(left, entry)
        assert not pdom.postdominates(right, entry)

    def test_reflexive(self):
        f, entry, *_ = diamond()
        pdom = PostDominators(f)
        assert pdom.postdominates(entry, entry)

    def test_loop_body_postdominates_itself_only(self):
        module = lower_ssa("""
program p
  integer :: i, s
  s = 0
  do i = 1, 3
    if (mod(i, 2) == 0) then
      s = s + 1
    end if
    s = s + i
  end do
  print s
end program
""")
        main = module.main
        pdom = PostDominators(main)
        body = next(b for b in main.blocks if b.name.startswith("do_body"))
        then_block = next(b for b in main.blocks
                          if b.name.startswith("if_then"))
        join = next(b for b in main.blocks if b.name.startswith("if_exit"))
        # the if-join postdominates the body entry; the then-arm does not
        assert pdom.postdominates(join, body)
        assert not pdom.postdominates(then_block, body)

    def test_multiple_exits(self):
        f = Function("f", is_main=True)
        entry = f.new_block("entry")
        a = f.new_block("a")
        b = f.new_block("b")
        entry.append(CondJump(Const(True), a, b))
        a.append(Return())
        b.append(Return())
        pdom = PostDominators(f)
        assert not pdom.postdominates(a, entry)
        assert not pdom.postdominates(b, entry)
        assert pdom.postdominates(a, a)
