"""Tests for SSA affine value analysis."""

from repro.analysis import compute_affine_forms
from repro.ir import Var
from repro.symbolic import LinearExpr

from ..conftest import lower_ssa


def forms_for(source):
    module = lower_ssa(source)
    return compute_affine_forms(module.main), module.main


class TestAffineForms:
    def test_parameter_is_atomic(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3
  integer :: i
  i = n
end program
""")
        assert env.form_of(Var("n")) == LinearExpr.symbol("n")

    def test_copy_propagates(self):
        env, main = forms_for("""
program p
  input integer :: n = 3
  integer :: i
  i = n
end program
""")
        assert env.forms["i.1"] == LinearExpr.symbol("n")

    def test_affine_combination(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3
  integer :: k
  k = 2 * n - 1
end program
""")
        assert env.forms["k.1"] == LinearExpr({"n": 2}, -1)

    def test_nested_chain(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3
  integer :: a, b, c
  a = n + 1
  b = a * 3
  c = b - n
end program
""")
        assert env.forms["c.1"] == LinearExpr({"n": 2}, 3)

    def test_negation(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3
  integer :: a
  a = -n
end program
""")
        assert env.forms["a.1"] == LinearExpr({"n": -1}, 0)

    def test_product_of_vars_is_atomic(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3, m = 4
  integer :: a
  a = n * m
end program
""")
        form = env.forms["a.1"]
        assert len(form.symbols()) == 1
        assert form.symbols()[0].startswith("t")

    def test_phi_is_atomic(self):
        env, main = forms_for("""
program p
  input integer :: n = 3
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        phis = [name for name in env.forms
                if env.forms[name] == LinearExpr.symbol(name)
                and name.startswith("i.")]
        assert phis  # the loop-carried i is atomic

    def test_def_block_recorded(self):
        env, main = forms_for("""
program p
  integer :: a
  a = 1
end program
""")
        assert env.def_block("a.1") is main.entry

    def test_param_has_no_def_block(self):
        env, _ = forms_for("""
program p
  input integer :: n = 3
end program
""")
        assert env.def_block("n") is None

    def test_var_for(self):
        env, _ = forms_for("""
program p
  integer :: a
  a = 1
end program
""")
        assert env.var_for("a.1") == Var("a.1")
        assert env.var_for("ghost") is None

    def test_real_values_are_atomic(self):
        env, _ = forms_for("""
program p
  real :: x
  x = 1.5
end program
""")
        assert env.forms["x.1"] == LinearExpr.symbol("x.1")
