"""Tests for the cross-call extension kernels in the registry."""

import pytest

from repro.benchsuite import (all_programs, cross_call_programs,
                              get_program)
from repro.checks.config import CheckKind, OptimizerOptions, Scheme
from repro.interp.machine import Machine
from repro.pipeline import compile_source

EXTENSION_NAMES = ("ipsmooth", "ipduplex", "iphoist")


class TestRegistry:
    def test_names_and_suite(self):
        kernels = cross_call_programs()
        assert tuple(p.name for p in kernels) == EXTENSION_NAMES
        assert all(p.suite == "extension" for p in kernels)

    def test_get_program_finds_extension_kernels(self):
        for name in EXTENSION_NAMES:
            assert get_program(name).name == name

    def test_table1_suite_unchanged(self):
        # the paper tables iterate all_programs(); the extension
        # kernels must never leak in (table goldens depend on it)
        names = {p.name for p in all_programs()}
        assert len(all_programs()) == 10
        assert names.isdisjoint(EXTENSION_NAMES)

    def test_every_kernel_has_subroutines(self):
        for program in cross_call_programs():
            assert "subroutine" in program.source
            assert "call " in program.source
            # argument-carried symbolic bounds are the point
            assert "(1:m)" in program.source


def _dynamic_checks(program_def, inline):
    options = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX,
                               inline=inline)
    program = compile_source(program_def.source, options, verify_ir=True)
    machine = Machine(program.module, program_def.test_inputs)
    machine.run()
    return machine.counters.checks, list(machine.output)


class TestCrossCallElimination:
    @pytest.mark.parametrize("name", EXTENSION_NAMES)
    def test_inlined_strictly_beats_baseline(self, name):
        program_def = get_program(name)
        plain_checks, plain_out = _dynamic_checks(program_def, False)
        inlined_checks, inlined_out = _dynamic_checks(program_def, True)
        assert inlined_out == plain_out
        assert inlined_checks < plain_checks

    def test_iphoist_uses_the_prover(self):
        # the `p <= m` residue of relax is only discharged by the
        # symbolic prover once the caller's actuals are in view
        program_def = get_program("iphoist")
        options = OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX,
                                   inline=True)
        program = compile_source(program_def.source, options)
        proved = sum(s.proved for s in program.optimize_stats.values())
        assert proved > 0

    def test_prover_idle_without_inline(self):
        program_def = get_program("iphoist")
        options = OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX)
        program = compile_source(program_def.source, options)
        proved = sum(s.proved for s in program.optimize_stats.values())
        assert proved == 0
