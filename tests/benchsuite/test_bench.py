"""Tests for ``repro bench`` (engine comparison) and ``tables --engine``."""

import contextlib
import io
import json

from repro.benchsuite import (BENCH_PARITY_FIELDS, all_programs, run_bench,
                              run_suite)
from repro.pipeline.cache import BackendCache, FrontendCache
from repro.reporting import (BENCH_SCHEMA, TABLE3_LABELS, bench_to_dict,
                             render_tables_text, table2_labels,
                             tables_to_dict)


def small_bench(count=2, **kwargs):
    return run_bench(all_programs()[:count], small=True, repeats=1,
                     cache=FrontendCache(), backend_cache=BackendCache(),
                     **kwargs)


class TestRunBench:
    def test_counts_and_output_agree_across_engines(self):
        result = small_bench()
        assert result.counts_ok()
        for row in result.programs:
            assert not row.mismatches
            interp = row.engines["interp"].counters
            compiled = row.engines["compiled"].counters
            spec = row.engines["specialized"].counters
            for field in BENCH_PARITY_FIELDS:
                assert interp[field] == compiled[field], field
                assert interp[field] == spec[field], field
            # both back-ends run destructed SSA, so they agree on
            # every counter, phis included
            assert spec == compiled

    def test_phis_differ_by_design(self):
        # destructed SSA charges two copies per phi; the interpreter
        # charges one move — parity deliberately excludes the field
        result = small_bench()
        row = result.programs[0]
        assert "phis" not in BENCH_PARITY_FIELDS
        assert row.engines["compiled"].counters["phis"] >= \
            row.engines["interp"].counters["phis"]

    def test_wall_clock_recorded_per_engine(self):
        result = small_bench()
        for row in result.programs:
            for run in row.engines.values():
                assert run.seconds > 0.0
                assert len(run.runs) == result.repeats
            assert row.engines["compiled"].translate_seconds > 0.0
            assert row.engines["specialized"].translate_seconds > 0.0
            assert row.engines["interp"].translate_seconds == 0.0

    def test_interp_only_mode(self):
        result = small_bench(count=1, engines=("interp",))
        row = result.programs[0]
        assert set(row.engines) == {"interp"}
        assert row.counts_match and row.output_match
        assert row.speedup == 0.0

    def test_mismatch_is_flagged(self):
        result = small_bench(count=1)
        row = result.programs[0]
        row.engines["compiled"].counters["checks"] += 1
        recomputed = [field for field in BENCH_PARITY_FIELDS
                      if row.engines["interp"].counters.get(field) !=
                      row.engines["compiled"].counters.get(field)]
        assert recomputed == ["checks"]

    def test_specialized_mismatch_is_labeled(self, monkeypatch):
        # a specialized-engine divergence must be distinguishable from
        # a threaded-engine one in the mismatch list
        from repro.benchsuite import runner

        real = runner._time_engine

        def tampered(program, engine, inputs, max_steps, repeats, cache):
            run = real(program, engine, inputs, max_steps, repeats, cache)
            if engine == "specialized":
                run.counters["checks"] += 1
            return run

        monkeypatch.setattr(runner, "_time_engine", tampered)
        result = small_bench(count=1)
        row = result.programs[0]
        assert row.mismatches == ["specialized:checks"]
        assert not row.counts_match
        assert not result.counts_ok()


class TestBenchDocument:
    def test_schema_and_totals(self):
        doc = bench_to_dict(small_bench())
        assert doc["schema"] == BENCH_SCHEMA == "repro.bench.v1"
        assert doc["totals"]["counts_match"] is True
        assert doc["totals"]["interp_seconds"] > 0.0
        assert doc["totals"]["compiled_seconds"] > 0.0
        assert doc["totals"]["specialized_seconds"] > 0.0
        assert doc["totals"]["speedup_specialized"] > 0.0
        assert doc["totals"]["speedup_vs_compiled"] > 0.0
        assert set(doc["engines"]) == {"interp", "compiled",
                                       "specialized"}

    def test_two_engine_document_has_no_specialized_fields(self):
        doc = bench_to_dict(small_bench(count=1,
                                        engines=("interp", "compiled")))
        assert set(doc["engines"]) == {"interp", "compiled"}
        assert "specialized_seconds" not in doc["totals"]
        assert "speedup_specialized" not in doc["programs"][0]

    def test_program_entries_are_complete(self):
        doc = bench_to_dict(small_bench())
        for entry in doc["programs"]:
            assert sorted(entry) == ["counts_match", "engines",
                                     "mismatches", "output_match",
                                     "program", "speedup",
                                     "speedup_specialized",
                                     "speedup_vs_compiled"]
            for engine in entry["engines"].values():
                assert sorted(engine) == ["counters", "runs", "seconds",
                                          "translate_seconds"]
                assert engine["counters"]["instructions"] > 0

    def test_document_is_json_serializable(self):
        json.dumps(bench_to_dict(small_bench()), sort_keys=True)


class TestBenchCli:
    def test_exit_zero_and_artifact(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "BENCH_4.json"
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer), \
                contextlib.redirect_stderr(io.StringIO()):
            code = main(["bench", "--small", "--repeats", "1",
                         "--programs", "vortex", "bdna",
                         "--out", str(out), "--json"])
        assert code == 0
        doc = json.loads(buffer.getvalue())
        assert doc["schema"] == "repro.bench.v1"
        on_disk = json.loads(out.read_text())
        assert on_disk["totals"]["counts_match"] is True
        assert [p["program"] for p in on_disk["programs"]] == \
            ["vortex", "bdna"]

    def test_unknown_program_is_usage_error(self):
        import pytest

        from repro.cli import main

        with contextlib.redirect_stderr(io.StringIO()), \
                pytest.raises(SystemExit) as info:
            main(["bench", "--programs", "nope", "--out", ""])
        assert info.value.code == 2

    def test_tag_derives_filename_and_refuses_clobber(self, tmp_path,
                                                      monkeypatch):
        import pytest

        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        quiet = (contextlib.redirect_stdout(io.StringIO()),
                 contextlib.redirect_stderr(io.StringIO()))
        with quiet[0], quiet[1]:
            code = main(["bench", "--small", "--repeats", "1",
                         "--programs", "vortex", "--tag", "T",
                         "--engine", "specialized"])
        assert code == 0
        out = tmp_path / "BENCH_T.json"
        assert out.exists()
        doc = json.loads(out.read_text())
        assert set(doc["engines"]) == {"interp", "specialized"}
        assert doc["totals"]["counts_match"] is True
        # a second run must refuse to clobber the artifact ...
        with contextlib.redirect_stderr(io.StringIO()), \
                pytest.raises(SystemExit) as info:
            main(["bench", "--small", "--repeats", "1",
                  "--programs", "vortex", "--tag", "T"])
        assert info.value.code == 2
        # ... unless --force is given
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            code = main(["bench", "--small", "--repeats", "1",
                         "--programs", "vortex", "--tag", "T", "--force"])
        assert code == 0


class TestTablesEngine:
    def test_tables_text_is_byte_identical_across_engines(self):
        programs = all_programs()[:2]
        interp = run_suite(programs, small=True, jobs=1)
        compiled = run_suite(programs, small=True, jobs=1,
                             engine="compiled")
        assert render_tables_text(interp) == render_tables_text(compiled)

    def test_tables_document_records_engine(self):
        suite = run_suite(all_programs()[:1], small=True, jobs=1,
                          engine="compiled")
        doc = tables_to_dict(suite, True, table2_labels(), TABLE3_LABELS)
        assert doc["engine"] == "compiled"
