"""Tests for the parallel suite runner and the shared frontend cache.

The acceptance properties of the measurement harness live here:

* results are identical (per-cell) for any ``jobs`` value;
* the frontend (parse+lower+SSA) runs at most once per benchmark
  program per table run, proven by cache/pass-trace counters;
* pool failures degrade to serial execution, not to an error.
"""

import pytest

from repro.benchsuite import (all_programs, run_compare, run_program,
                              run_suite, run_table1, run_table2, run_table3)
from repro.benchsuite import parallel as parallel_mod
from repro.checks import CheckKind, ImplicationMode, Scheme
from repro.pipeline import FrontendCache

FIRST = all_programs()[:2]


def cell_values(cells):
    return {key: (cell.dynamic_checks, cell.baseline_checks,
                  cell.static_checks)
            for key, cell in cells.items()}


class TestRunProgram:
    def test_covers_both_tables(self):
        baseline, table2, table3, stats = run_program("vortex", small=True)
        assert baseline.dynamic_checks > 0
        assert len(table2) == 18      # 2 kinds x 9 schemes
        assert len(table3) == 12      # 2 kinds x 6 rows
        assert all(name == "vortex" for _, name in table2)

    def test_frontend_compiled_exactly_once(self):
        _, _, _, stats = run_program("vortex", small=True)
        assert stats["frontend_compiles"] == 1
        # baseline + 30 cells + 2 LO training runs (one per kind) all
        # hit the single cached frontend
        assert stats["hits"] == 32


class TestRunSuite:
    def test_serial_and_parallel_agree(self):
        serial = run_suite(FIRST, small=True, jobs=1)
        pooled = run_suite(FIRST, small=True, jobs=2)
        assert serial.names == pooled.names
        assert cell_values(serial.table2) == cell_values(pooled.table2)
        assert cell_values(serial.table3) == cell_values(pooled.table3)
        assert [r.dynamic_checks for r in serial.rows] == \
            [r.dynamic_checks for r in pooled.rows]

    def test_frontend_once_per_program_any_jobs(self):
        for jobs in (1, 2):
            suite = run_suite(FIRST, small=True, jobs=jobs)
            assert suite.frontend_compiles() == len(FIRST)
            for stats in suite.cache_stats.values():
                assert stats["frontend_compiles"] == 1

    def test_deterministic_ordering(self):
        suite = run_suite(FIRST, small=True, jobs=2)
        assert suite.names == [p.name for p in FIRST]
        assert [r.name for r in suite.rows] == suite.names

    def test_pool_failure_falls_back_to_serial(self, monkeypatch, capsys):
        def broken_pool(names, small, jobs):
            raise OSError("no forks today")

        monkeypatch.setattr(parallel_mod, "_run_pool", broken_pool)
        suite = run_suite(FIRST, small=True, jobs=2)
        assert not suite.parallel
        assert suite.frontend_compiles() == len(FIRST)
        assert "falling back to serial" in capsys.readouterr().err


class TestRunnerCacheSharing:
    def test_tables_share_one_frontend_per_program(self):
        """The acceptance counter: across a whole table run (Tables 1,
        2, and 3) the frontend executes once per program."""
        cache = FrontendCache()
        rows = run_table1(FIRST, small=True, cache=cache)
        cells2 = run_table2(FIRST, kinds=(CheckKind.PRX,),
                            schemes=(Scheme.NI, Scheme.LLS), small=True,
                            cache=cache)
        cells3 = run_table3(
            FIRST, kinds=(CheckKind.PRX,),
            rows=((Scheme.NI, ImplicationMode.ALL),
                  (Scheme.NI, ImplicationMode.NONE)),
            small=True, cache=cache)
        assert cache.frontend_compiles == len(FIRST)
        assert len(rows) == len(FIRST)
        # every cell after the first compile reused the cache, which
        # its pass trace proves: no fresh parse, one cached frontend
        for cell in list(cells2.values()) + list(cells3.values()):
            assert cell.trace.run_count("parse") == 0
            assert cell.trace.frontend_was_cached()

    def test_precomputed_baselines_skip_reexecution(self):
        cache = FrontendCache()
        rows = run_table1(FIRST, small=True, cache=cache)
        baselines = {row.name: row for row in rows}
        cells = run_table2(FIRST, kinds=(CheckKind.PRX,),
                           schemes=(Scheme.NI,), small=True, cache=cache,
                           baselines=baselines)
        for (label, name), cell in cells.items():
            assert cell.baseline_checks == baselines[name].dynamic_checks


class TestRunCompare:
    SOURCE = """
program demo
  input integer :: n = 20
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""

    def test_scheme_order_and_agreement(self):
        serial = run_compare(self.SOURCE, CheckKind.PRX, 42, {"n": 15},
                             jobs=1)
        assert [scheme for scheme, _ in serial] == list(Scheme)
        pooled = run_compare(self.SOURCE, CheckKind.PRX, 42, {"n": 15},
                             jobs=2)
        assert [c.dynamic_checks for _, c in serial] == \
            [c.dynamic_checks for _, c in pooled]
