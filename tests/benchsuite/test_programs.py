"""Tests for the ten-program benchmark suite.

These assert the *shape* properties of the paper's evaluation on small
(test-sized) inputs: scheme orderings per program, output preservation,
and each program's signature phenomenon.
"""

import pytest

from repro.benchsuite import all_programs, get_program
from repro.checks import CheckKind, ImplicationMode, OptimizerOptions, Scheme
from repro.pipeline.stats import (measure_baseline, measure_scheme,
                                  verify_same_output)

PROGRAMS = all_programs()
NAMES = [p.name for p in PROGRAMS]


def eliminated(program, scheme=Scheme.NI, kind=CheckKind.PRX,
               mode=ImplicationMode.ALL):
    baseline = measure_baseline(program.name, program.source,
                                program.test_inputs)
    options = OptimizerOptions(scheme=scheme, kind=kind, implication=mode)
    cell = measure_scheme(program.name, program.source, options,
                          baseline.dynamic_checks, program.test_inputs)
    return cell.percent_eliminated


class TestSuiteBasics:
    def test_ten_programs(self):
        assert len(PROGRAMS) == 10
        assert NAMES == ["vortex", "arc2d", "bdna", "dyfesm", "mdg", "qcd",
                         "spec77", "trfd", "linpackd", "simple"]

    def test_get_program(self):
        assert get_program("trfd").name == "trfd"
        with pytest.raises(KeyError):
            get_program("ghost")

    def test_suites_attributed(self):
        suites = {p.suite for p in PROGRAMS}
        assert suites == {"Mendez", "Perfect", "Riceps"}

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_compiles_and_runs(self, program):
        row = measure_baseline(program.name, program.source,
                               program.test_inputs)
        assert row.dynamic_checks > 0
        assert row.dynamic_instructions > 0

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_no_traps_on_valid_inputs(self, program):
        # measured twice (test and full inputs): neither traps
        measure_baseline(program.name, program.source, program.inputs)

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_output_preserved_under_all(self, program):
        options = OptimizerOptions(scheme=Scheme.ALL)
        assert verify_same_output(program.source, options,
                                  program.test_inputs)

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_output_preserved_under_inx_lls(self, program):
        options = OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX)
        assert verify_same_output(program.source, options,
                                  program.test_inputs)


class TestSchemeOrderings:
    """The paper's qualitative orderings, per program."""

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_cs_at_least_ni(self, program):
        assert eliminated(program, Scheme.CS) >= \
            eliminated(program, Scheme.NI) - 1e-9

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_se_at_least_cs(self, program):
        assert eliminated(program, Scheme.SE) >= \
            eliminated(program, Scheme.CS) - 1e-9

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_li_at_least_ni(self, program):
        assert eliminated(program, Scheme.LI) >= \
            eliminated(program, Scheme.NI) - 1e-9

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_lls_at_least_li(self, program):
        assert eliminated(program, Scheme.LLS) >= \
            eliminated(program, Scheme.LI) - 1e-9

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_lls_dominates(self, program):
        """Loop-based hoisting eliminates the lion's share (paper
        result 3: ~98% on full inputs; >=80% even on tiny test inputs)."""
        assert eliminated(program, Scheme.LLS) >= 80.0

    @pytest.mark.parametrize("program", PROGRAMS, ids=NAMES)
    def test_ni_prime_not_better_than_ni(self, program):
        assert eliminated(program, Scheme.NI,
                          mode=ImplicationMode.NONE) <= \
            eliminated(program, Scheme.NI) + 1e-9


class TestSignatureEffects:
    def test_arc2d_cs_gain(self):
        program = get_program("arc2d")
        assert eliminated(program, Scheme.CS) > \
            eliminated(program, Scheme.NI)

    def test_dyfesm_pre_gain(self):
        program = get_program("dyfesm")
        assert eliminated(program, Scheme.SE) > \
            eliminated(program, Scheme.NI)
        assert eliminated(program, Scheme.LNI) > \
            eliminated(program, Scheme.NI)

    def test_bdna_implication_gap(self):
        program = get_program("bdna")
        assert eliminated(program, Scheme.NI, mode=ImplicationMode.NONE) < \
            eliminated(program, Scheme.NI)

    def test_qcd_lls_ceiling(self):
        # indirect addressing keeps some checks in the loop
        program = get_program("qcd")
        assert eliminated(program, Scheme.LLS) < 97.0

    def test_spec77_all_gain(self):
        program = get_program("spec77")
        assert eliminated(program, Scheme.ALL) > \
            eliminated(program, Scheme.LLS)

    def test_trfd_inx_li_gain(self):
        """The paper's trfd phenomenon: induction-variable analysis
        lets LI hoist more checks."""
        program = get_program("trfd")
        assert eliminated(program, Scheme.LI, kind=CheckKind.INX) > \
            eliminated(program, Scheme.LI, kind=CheckKind.PRX)

    def test_vortex_high_ni(self):
        program = get_program("vortex")
        assert eliminated(program, Scheme.NI) > 75.0

    def test_trfd_low_ni(self):
        program = get_program("trfd")
        assert eliminated(program, Scheme.NI) < \
            eliminated(get_program("vortex"), Scheme.NI)
