"""Tests for the suite runner (small inputs to stay fast)."""

from repro.benchsuite import (TABLE2_SCHEMES, TABLE3_ROWS, all_programs,
                              run_table1, run_table2, run_table3)
from repro.checks import CheckKind, ImplicationMode, Scheme


FIRST = all_programs()[:2]


class TestRunner:
    def test_table1_rows(self):
        rows = run_table1(FIRST, small=True)
        assert [r.name for r in rows] == [p.name for p in FIRST]
        for row in rows:
            assert row.dynamic_checks > 0

    def test_table2_cells(self):
        cells = run_table2(FIRST, kinds=(CheckKind.PRX,),
                           schemes=(Scheme.NI, Scheme.LLS), small=True)
        assert len(cells) == 4
        for (label, name), cell in cells.items():
            assert label in ("PRX-NI", "PRX-LLS")
            assert 0.0 <= cell.percent_eliminated <= 100.0

    def test_table3_cells(self):
        rows = ((Scheme.NI, ImplicationMode.ALL),
                (Scheme.NI, ImplicationMode.NONE))
        cells = run_table3(FIRST, kinds=(CheckKind.PRX,), rows=rows,
                           small=True)
        assert len(cells) == 4
        labels = {label for label, _ in cells}
        assert labels == {"PRX-NI", "PRX-NI'"}

    def test_default_scheme_tuple_matches_paper(self):
        # the paper's seven schemes in order, plus the SPEC and LO
        # extensions
        assert [s.value for s in TABLE2_SCHEMES] == \
            ["NI", "CS", "LNI", "SE", "LI", "LLS", "ALL", "SPEC", "LO"]

    def test_table3_rows_match_paper(self):
        labels = [(s.value, m.value) for s, m in TABLE3_ROWS]
        assert ("NI", "none") in labels
        assert ("LLS", "cross-family") in labels
