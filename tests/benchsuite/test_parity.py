"""Engine parity: the interpreter and the Python back-end must agree.

For every program in the registry under PRX-LLS (the paper's headline
configuration), ``run()`` and ``run_compiled()`` must produce the same
output and the same dynamic *check* count — and since ``run_compiled``
now destructs SSA on a private copy, calling them in either order must
not change either engine's numbers.
"""

import pytest

from repro.benchsuite import all_programs
from repro.checks import OptimizerOptions, Scheme
from repro.pipeline import compile_source

LLS = OptimizerOptions(scheme=Scheme.LLS)

PROGRAMS = all_programs()


@pytest.mark.parametrize("program", PROGRAMS,
                         ids=[p.name for p in PROGRAMS])
class TestEngineParity:
    def test_outputs_and_check_counts_match(self, program):
        compiled = compile_source(program.source, LLS)
        interp = compiled.run(program.test_inputs)
        backend = compiled.run_compiled(program.test_inputs)
        assert backend.output == interp.output
        assert backend.counters.checks == interp.counters.checks

    def test_call_order_does_not_matter(self, program):
        run_first = compile_source(program.source, LLS)
        a = run_first.run(program.test_inputs)

        compiled_first = compile_source(program.source, LLS)
        compiled_first.run_compiled(program.test_inputs)
        b = compiled_first.run(program.test_inputs)

        assert a.output == b.output
        assert a.counters.checks == b.counters.checks
        assert a.counters.instructions == b.counters.instructions
