"""Tests for the execution counters."""

from repro.interp import ExecutionCounters

from ..conftest import compile_and_run, run_baseline


class TestCounters:
    def test_initial_state(self):
        counters = ExecutionCounters()
        assert counters.instructions == 0
        assert counters.checks == 0
        assert counters.check_ratio() == 0.0

    def test_check_ratio(self):
        counters = ExecutionCounters()
        counters.instructions = 200
        counters.checks = 50
        assert counters.check_ratio() == 0.25

    def test_snapshot_is_plain_dict(self):
        counters = ExecutionCounters()
        counters.instructions = 3
        snap = counters.snapshot()
        assert snap["instructions"] == 3
        snap["instructions"] = 99
        assert counters.instructions == 3

    def test_load_store_weighting(self):
        # a 2D access costs 3 (1 + rank); a scalar op costs 1
        machine = run_baseline("""
program p
  real :: c(4, 4)
  c(1, 1) = 1.0
end program
""")
        # store(3) + nothing else but the return(1): 4 total
        assert machine.counters.instructions == 4

    def test_guarded_check_counter(self):
        from repro.checks import OptimizerOptions, Scheme
        machine = compile_and_run("""
program p
  input integer :: n = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
end program
""", OptimizerOptions(scheme=Scheme.LLS))
        assert machine.counters.guarded_checks >= 1
        assert machine.counters.checks >= machine.counters.guarded_checks


class TestProfiling:
    def test_by_opcode_profile(self):
        from repro.interp import Machine
        from ..conftest import lower_ssa
        module = lower_ssa("""
program p
  integer :: i, s
  s = 0
  do i = 1, 5
    s = s + i
  end do
  print s
end program
""")
        machine = Machine(module, profile=True)
        machine.run()
        assert machine.counters.by_opcode["Assign"] > 0
        assert machine.counters.by_opcode["BinOp"] > 0
        assert machine.counters.by_opcode["Phi"] > 0

    def test_profiling_off_by_default(self):
        from repro.interp import Machine
        from ..conftest import lower_ssa
        module = lower_ssa("program p\ninteger :: i\ni = 1\nend program")
        machine = Machine(module)
        machine.run()
        assert not machine.counters.by_opcode
