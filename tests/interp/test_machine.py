"""Tests for the IR interpreter."""

import pytest

from repro.errors import InterpError, RangeTrap
from repro.interp import Machine, run_module

from ..conftest import lower, lower_ssa


def run(source, inputs=None, ssa=True, max_steps=1_000_000):
    module = lower_ssa(source) if ssa else lower(source)
    machine = Machine(module, inputs, max_steps)
    machine.run()
    return machine


class TestArithmetic:
    def test_integer_arithmetic(self):
        machine = run("""
program p
  integer :: a
  a = (7 + 3) * 2 - 5
  print a
end program
""")
        assert machine.output == [15]

    def test_integer_division_truncates_toward_zero(self):
        machine = run("""
program p
  input integer :: a = -7, b = 2
  print a / b
end program
""")
        assert machine.output == [-3]

    def test_mod_semantics(self):
        machine = run("""
program p
  input integer :: a = -7, b = 2
  print mod(a, b)
end program
""")
        assert machine.output == [-1]

    def test_real_arithmetic(self):
        machine = run("""
program p
  real :: x
  x = 1.5 * 2.0 + 0.25
  print x
end program
""")
        assert machine.output == [3.25]

    def test_intrinsics(self):
        machine = run("""
program p
  input integer :: a = -4
  print abs(a)
  print min(a, 2)
  print max(a, 2)
  print real(a)
  print int(2.9)
end program
""")
        assert machine.output == [4, -4, 2, -4.0, 2]

    def test_sqrt(self):
        machine = run("program p\nprint sqrt(9.0)\nend program")
        assert machine.output == [3.0]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            run("""
program p
  input integer :: z = 0
  print 1 / z
end program
""")


class TestControlFlow:
    def test_if_else(self):
        machine = run("""
program p
  input integer :: c = 1
  if (c > 0) then
    print 1
  else
    print 2
  end if
end program
""", {"c": -5})
        assert machine.output == [2]

    def test_do_loop_sum(self):
        machine = run("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end program
""")
        assert machine.output == [55]

    def test_zero_trip_loop(self):
        machine = run("""
program p
  integer :: i, s
  s = 0
  do i = 5, 1
    s = s + 1
  end do
  print s
end program
""")
        assert machine.output == [0]

    def test_negative_step_loop(self):
        machine = run("""
program p
  integer :: i, s
  s = 0
  do i = 10, 1, -2
    s = s + i
  end do
  print s
end program
""")
        assert machine.output == [30]

    def test_dynamic_step(self):
        machine = run("""
program p
  input integer :: st = 2
  integer :: i, s
  s = 0
  do i = 1, 10, st
    s = s + 1
  end do
  print s
end program
""", {"st": 3})
        assert machine.output == [4]

    def test_while_loop(self):
        machine = run("""
program p
  integer :: i
  i = 1
  while (i < 100) do
    i = i * 2
  end while
  print i
end program
""")
        assert machine.output == [128]

    def test_step_limit(self):
        with pytest.raises(InterpError):
            run("""
program p
  integer :: i
  i = 0
  while (i < 10) do
    i = i - 1
  end while
end program
""", max_steps=1000)


class TestArraysAndCalls:
    def test_array_roundtrip(self):
        machine = run("""
program p
  integer :: i
  real :: a(5)
  do i = 1, 5
    a(i) = real(i) * 2.0
  end do
  print a(3)
end program
""")
        assert machine.output == [6.0]

    def test_arrays_zero_initialized(self):
        machine = run("""
program p
  real :: a(5)
  integer :: b(3)
  print a(1)
  print b(2)
end program
""")
        assert machine.output == [0.0, 0]

    def test_multi_dim_array(self):
        machine = run("""
program p
  integer :: m(2, 0:2)
  m(2, 0) = 7
  print m(2, 0)
  print m(1, 0)
end program
""")
        assert machine.output == [7, 0]

    def test_call_passes_arrays_by_reference(self):
        machine = run("""
program p
  real :: a(5)
  call fill(a)
  print a(2)
end program
subroutine fill(x)
  real :: x(5)
  x(2) = 9.0
end subroutine
""")
        assert machine.output == [9.0]

    def test_call_passes_scalars_by_value(self):
        machine = run("""
program p
  integer :: n
  n = 1
  call bump(n)
  print n
end program
subroutine bump(n)
  integer :: n
  n = n + 1
end subroutine
""")
        assert machine.output == [1]

    def test_adjustable_array_bounds(self):
        machine = run("""
program p
  input integer :: n = 4
  real :: a(8)
  call work(n, a)
  print a(4)
end program
subroutine work(n, a)
  integer :: n, i
  real :: a(n)
  do i = 1, n
    a(i) = real(i)
  end do
end subroutine
""")
        assert machine.output == [4.0]

    def test_input_defaults_and_overrides(self):
        source = """
program p
  input integer :: n = 7
  print n
end program
"""
        assert run(source).output == [7]
        assert run(source, {"n": 3}).output == [3]


class TestChecksAtRuntime:
    def test_in_bounds_passes(self):
        machine = run("""
program p
  input integer :: i = 5
  real :: a(10)
  a(i) = 1.0
  print a(i)
end program
""")
        assert machine.counters.checks == 4
        assert machine.counters.traps == 0

    def test_upper_violation_traps(self):
        with pytest.raises(RangeTrap):
            run("""
program p
  input integer :: i = 11
  real :: a(10)
  a(i) = 1.0
end program
""")

    def test_lower_violation_traps(self):
        with pytest.raises(RangeTrap):
            run("""
program p
  input integer :: i = 0
  real :: a(10)
  a(i) = 1.0
end program
""")

    def test_trap_message_names_array(self):
        with pytest.raises(RangeTrap) as info:
            run("""
program p
  input integer :: i = 11
  real :: vec(10)
  vec(i) = 1.0
end program
""")
        assert "vec" in str(info.value)

    def test_counters_split_categories(self):
        machine = run("""
program p
  integer :: i
  real :: a(10)
  do i = 1, 10
    a(i) = 1.0
  end do
end program
""")
        assert machine.counters.checks == 20
        assert machine.counters.instructions > 0
        assert machine.counters.phis > 0  # SSA form executes phis


class TestSSAVsNonSSA:
    def test_same_results_both_forms(self, loop_program):
        plain = run(loop_program, {"n": 8}, ssa=False)
        renamed = run(loop_program, {"n": 8}, ssa=True)
        assert plain.output == renamed.output
        assert plain.counters.checks == renamed.counters.checks


class TestRecursionGuard:
    def test_runaway_recursion_is_caught(self):
        import pytest
        from repro.errors import InterpError
        with pytest.raises(InterpError):
            run("""
program p
  call spin(0)
end program
subroutine spin(d)
  integer :: d
  call spin(d + 1)
end subroutine
""")

    def test_bounded_recursion_allowed(self):
        machine = run("""
program p
  integer :: r(1)
  call fib(7, r)
  print r(1)
end program
subroutine fib(n, r)
  integer :: n
  integer :: r(1), x(1), y(1)
  if (n < 2) then
    r(1) = n
    return
  end if
  call fib(n - 1, x)
  call fib(n - 2, y)
  r(1) = x(1) + y(1)
end subroutine
""")
        assert machine.output == [13]
