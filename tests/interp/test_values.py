"""Tests for run-time array storage."""

import pytest

from repro.errors import InterpError
from repro.interp import ArrayStorage
from repro.ir import ArrayType, Dimension, INT, REAL


def storage(element=REAL, bounds=((1, 10),)):
    dims = [Dimension.of(lo, hi) for lo, hi in bounds]
    return ArrayStorage("a", ArrayType(element, dims), list(bounds))


class TestStorage:
    def test_zero_fill_real(self):
        array = storage(REAL)
        assert array.load([5]) == 0.0

    def test_zero_fill_int(self):
        array = storage(INT)
        assert array.load([5]) == 0

    def test_store_load_roundtrip(self):
        array = storage()
        array.store([3], 2.5)
        assert array.load([3]) == 2.5

    def test_int_array_truncates(self):
        array = storage(INT)
        array.store([3], 2.9)
        assert array.load([3]) == 2

    def test_nonunit_lower_bound(self):
        array = storage(bounds=((5, 10),))
        array.store([5], 1.0)
        array.store([10], 2.0)
        assert array.load([5]) == 1.0
        assert array.load([10]) == 2.0

    def test_multi_dim_layout(self):
        array = storage(bounds=((1, 3), (0, 2)))
        array.store([2, 1], 9.0)
        assert array.load([2, 1]) == 9.0
        assert array.load([1, 1]) == 0.0

    def test_out_of_bounds_low(self):
        array = storage()
        with pytest.raises(InterpError):
            array.load([0])

    def test_out_of_bounds_high(self):
        array = storage()
        with pytest.raises(InterpError):
            array.store([11], 1.0)

    def test_rank_mismatch(self):
        array = storage(bounds=((1, 3), (1, 3)))
        with pytest.raises(InterpError):
            array.load([1])

    def test_empty_extent(self):
        array = storage(bounds=((5, 4),))
        with pytest.raises(InterpError):
            array.load([5])

    def test_error_mentions_missing_check(self):
        array = storage()
        with pytest.raises(InterpError) as info:
            array.load([99])
        assert "missing range check" in str(info.value)
