"""The paper's four headline results, asserted as tests.

From the abstract: "(1) the execution overhead of naive range checking
is high enough to merit optimization, (2) there are substantial
differences between various optimizations, (3) loop-based optimizations
that hoist checks out of loops are effective in eliminating about 98%
of the range checks, and (4) more sophisticated analysis and
optimization algorithms produce very marginal benefits."

Run on the full benchmark suite with test-sized inputs; the benchmark
harness (`benchmarks/`) re-asserts the same shapes at full scale.
"""

import pytest

from repro.benchsuite import all_programs
from repro.checks import ImplicationMode, OptimizerOptions, Scheme
from repro.pipeline.stats import measure_baseline, measure_scheme

PROGRAMS = all_programs()


@pytest.fixture(scope="module")
def suite_data():
    data = {}
    for program in PROGRAMS:
        baseline = measure_baseline(program.name, program.source,
                                    program.test_inputs)
        cells = {}
        for scheme in (Scheme.NI, Scheme.CS, Scheme.SE, Scheme.LLS,
                       Scheme.ALL):
            cells[scheme] = measure_scheme(
                program.name, program.source,
                OptimizerOptions(scheme=scheme),
                baseline.dynamic_checks, program.test_inputs)
        data[program.name] = (baseline, cells)
    return data


class TestResult1Overhead:
    def test_checks_are_a_large_fraction_of_work(self, suite_data):
        for name, (baseline, _) in suite_data.items():
            assert baseline.dynamic_ratio > 20.0, name

    def test_every_program_runs_thousands_of_checks(self, suite_data):
        for name, (baseline, _) in suite_data.items():
            assert baseline.dynamic_checks > 100, name


class TestResult2SubstantialDifferences:
    def test_lls_beats_ni_substantially(self, suite_data):
        for name, (_, cells) in suite_data.items():
            gap = cells[Scheme.LLS].percent_eliminated - \
                cells[Scheme.NI].percent_eliminated
            assert gap > 5.0, name

    def test_spread_across_schemes(self, suite_data):
        spreads = []
        for name, (_, cells) in suite_data.items():
            values = [c.percent_eliminated for c in cells.values()]
            spreads.append(max(values) - min(values))
        assert max(spreads) > 20.0


class TestResult3LoopHoisting:
    def test_lls_suite_average_is_high(self, suite_data):
        average = sum(cells[Scheme.LLS].percent_eliminated
                      for _, cells in suite_data.values()) / len(suite_data)
        # ~98% on the paper's full-scale inputs; >= 90% at test scale,
        # where the constant preheader cost is amortized less
        assert average >= 90.0

    def test_lls_wins_on_every_program(self, suite_data):
        for name, (_, cells) in suite_data.items():
            best_other = max(
                cells[s].percent_eliminated
                for s in (Scheme.NI, Scheme.CS, Scheme.SE))
            assert cells[Scheme.LLS].percent_eliminated >= best_other, name


class TestResult4MarginalSophistication:
    def test_all_gains_little_over_lls(self, suite_data):
        for name, (_, cells) in suite_data.items():
            gain = cells[Scheme.ALL].percent_eliminated - \
                cells[Scheme.LLS].percent_eliminated
            assert gain < 10.0, name

    def test_cs_and_se_gain_little_over_ni(self, suite_data):
        for name, (_, cells) in suite_data.items():
            assert cells[Scheme.SE].percent_eliminated - \
                cells[Scheme.NI].percent_eliminated < 15.0, name

    def test_implications_barely_matter_for_lls(self):
        for program in PROGRAMS[:4]:
            baseline = measure_baseline(program.name, program.source,
                                        program.test_inputs)
            lls = measure_scheme(program.name, program.source,
                                 OptimizerOptions(scheme=Scheme.LLS),
                                 baseline.dynamic_checks,
                                 program.test_inputs)
            lls_prime = measure_scheme(
                program.name, program.source,
                OptimizerOptions(scheme=Scheme.LLS,
                                 implication=ImplicationMode.CROSS_FAMILY),
                baseline.dynamic_checks, program.test_inputs)
            assert lls.percent_eliminated - \
                lls_prime.percent_eliminated < 8.0
