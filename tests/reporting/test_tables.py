"""Tests for table rendering."""

from repro.benchsuite import get_program
from repro.checks import OptimizerOptions, Scheme
from repro.pipeline.stats import (BaselineMeasurement, SchemeMeasurement,
                                  measure_baseline, measure_scheme)
from repro.reporting import (format_scheme_table, format_table1,
                             overhead_estimate, rows_as_dict)


def fake_baseline(name, dyn_instr=1000, dyn_checks=400):
    row = BaselineMeasurement(name)
    row.lines = 10
    row.subroutines = 1
    row.loops = 2
    row.static_instructions = 100
    row.dynamic_instructions = dyn_instr
    row.static_checks = 40
    row.dynamic_checks = dyn_checks
    return row


def fake_cell(name, label, baseline=400, remaining=100):
    cell = SchemeMeasurement(name, label)
    cell.baseline_checks = baseline
    cell.dynamic_checks = remaining
    cell.optimize_seconds = 0.01
    return cell


class TestTable1:
    def test_renders_all_rows(self):
        rows = [fake_baseline("alpha"), fake_baseline("beta")]
        text = format_table1(rows)
        assert "alpha" in text and "beta" in text
        assert "d-ratio" in text

    def test_ratio_math(self):
        row = fake_baseline("x", dyn_instr=1000, dyn_checks=400)
        assert row.dynamic_ratio == 40.0

    def test_overhead_estimate(self):
        rows = [fake_baseline("a", 1000, 220), fake_baseline("b", 1000, 660)]
        low, high = overhead_estimate(rows)
        assert low == 44.0
        assert high == 132.0  # the paper's section 4.1 numbers

    def test_empty_overhead(self):
        assert overhead_estimate([]) == (0.0, 0.0)


class TestSchemeTable:
    def test_layout(self):
        cells = {("PRX-NI", "alpha"): fake_cell("alpha", "PRX-NI"),
                 ("PRX-LLS", "alpha"): fake_cell("alpha", "PRX-LLS", 400, 4)}
        text = format_scheme_table(cells, ["PRX-NI", "PRX-LLS"], ["alpha"],
                                   "Table 2")
        assert "Table 2" in text
        assert "75.00" in text   # NI: 1 - 100/400
        assert "99.00" in text   # LLS: 1 - 4/400

    def test_missing_cell_rendered_as_dash(self):
        cells = {("PRX-NI", "alpha"): fake_cell("alpha", "PRX-NI")}
        text = format_scheme_table(cells, ["PRX-NI"], ["alpha", "beta"])
        assert "-" in text

    def test_rows_as_dict(self):
        cells = {("PRX-NI", "alpha"): fake_cell("alpha", "PRX-NI")}
        data = rows_as_dict(cells)
        assert data["PRX-NI"]["alpha"] == 75.0


class TestEndToEnd:
    def test_real_program_row(self):
        program = get_program("vortex")
        baseline = measure_baseline(program.name, program.source,
                                    program.test_inputs)
        cell = measure_scheme(program.name, program.source,
                              OptimizerOptions(scheme=Scheme.LLS),
                              baseline.dynamic_checks, program.test_inputs)
        text = format_scheme_table({("PRX-LLS", "vortex"): cell},
                                   ["PRX-LLS"], ["vortex"])
        assert "vortex" in text
