"""Golden-file tests locking the JSON output schemas.

The documents under ``tests/reporting/golden/`` are the published
contract: the service's responses and the CLI's ``--json`` output must
stay field-compatible release over release.  A failure here means a
consumer-visible schema change — either fix the regression or bump the
schema version string AND regenerate the golden deliberately.  Purely
*additive* optional fields keep the version string (consumers ignore
unknown keys) but still require a deliberate golden regeneration.
"""

import contextlib
import io
import json
import os

from repro.reporting.jsonout import (COMPARE_SCHEMA, LOADGEN_SCHEMA,
                                     RUN_SCHEMA, SERVICE_ERROR_SCHEMA,
                                     TABLES_SCHEMA)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

GOLDEN_SOURCE = """\
program golden
  input integer :: n = 12
  integer :: i
  real :: a(40)
  do i = 1, n
    a(i) = real(i) * 2.0
  end do
  print a(n)
end program
"""


def load_golden(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return json.load(handle)


def normalize_run(doc):
    """Zero the wall-clock fields; everything else is deterministic."""
    doc = dict(doc)
    if doc.get("phases"):
        doc["phases"] = {key: 0.0 for key in doc["phases"]}
    doc["frontend_cached"] = False  # depends on shared-cache warmth
    if doc.get("backend_cached") is not None:
        doc["backend_cached"] = False  # likewise (compiled engines only)
    return doc


class TestRunGolden:
    def test_cli_run_json_matches_golden(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "golden.f"
        path.write_text(GOLDEN_SOURCE)
        assert main(["run", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert normalize_run(doc) == load_golden("run.v1.json")

    def test_service_run_body_matches_golden(self):
        from repro.service.jobs import execute_request

        status, body = execute_request(
            {"action": "run", "source": GOLDEN_SOURCE})
        assert status == 200
        assert normalize_run(body) == load_golden("run.v1.json")

    def test_schema_constants_are_stable(self):
        # renaming a published schema string is a breaking change
        assert RUN_SCHEMA == "repro.run.v1"
        assert TABLES_SCHEMA == "repro.tables.v1"
        assert COMPARE_SCHEMA == "repro.compare.v1"
        assert LOADGEN_SCHEMA == "repro.loadgen.v1"
        assert SERVICE_ERROR_SCHEMA == "repro.service.error.v1"


class TestCompareFieldSet:
    def test_compare_json_fields_match_golden(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "golden.f"
        path.write_text(GOLDEN_SOURCE)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["compare", str(path), "--json"]) == 0
        doc = json.loads(buffer.getvalue())
        golden = load_golden("compare.v1.fields.json")
        assert sorted(doc) == golden["top"]
        assert sorted(doc["baseline"]) == golden["baseline"]
        for cell in doc["schemes"]:
            assert sorted(cell) == golden["scheme_cell"]


class TestTablesFieldSet:
    def test_tables_json_fields_match_golden(self):
        import unittest.mock as mock

        from repro.benchsuite import all_programs
        import repro.benchsuite.parallel as parallel
        from repro.reporting import TABLE3_LABELS, table2_labels
        from repro.reporting.jsonout import tables_to_dict

        suite = parallel.run_suite(all_programs()[:1], small=True, jobs=1)
        doc = tables_to_dict(suite, True, table2_labels(), TABLE3_LABELS)
        golden = load_golden("tables.v1.fields.json")
        assert sorted(doc) == golden["top"]
        assert sorted(doc["table1"][0]) == golden["table1_row"]
        assert sorted(doc["table2"][0]) == golden["table_cell"]
        assert sorted(doc["table3"][0]) == golden["table_cell"]
        cache_stats = next(iter(doc["cache"].values()))
        assert sorted(cache_stats) == golden["cache_stats"]


class TestLoadgenFieldSet:
    def test_loadgen_report_fields_match_golden(self):
        from repro.service.client import LoadgenReport

        report = LoadgenReport("http://127.0.0.1:0", 4)
        report.results.append({"sequence": 0, "tag": "bench:x",
                               "status": 200, "trapped": False,
                               "seconds": 0.01})
        report.wall_seconds = 0.5
        doc = report.as_dict()
        golden = load_golden("loadgen.v1.fields.json")
        assert sorted(doc) == golden["top"]
        assert sorted(doc["latency_seconds"]) == golden["latency"]
        assert sorted(doc["cache"]) == golden["cache"]


class TestServiceErrorGolden:
    def test_error_body_fields(self):
        from repro.service.jobs import ServiceError

        body = ServiceError(400, "nope").body()
        assert sorted(body) == ["error", "schema"]
        assert body["schema"] == SERVICE_ERROR_SCHEMA
