"""Tests for the optimization explanation report."""

from repro.checks import OptimizerOptions, Scheme
from repro.reporting import explain_optimization

SOURCE = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(0:50)
  do i = 1, n
    a(i) = a(i - 1) + 1.0
  end do
  print a(1)
end program
"""


class TestExplain:
    def test_dynamic_counts(self):
        report = explain_optimization(SOURCE,
                                      OptimizerOptions(scheme=Scheme.LLS))
        assert report.dynamic_before > report.dynamic_after
        assert report.percent_eliminated > 90.0

    def test_families_tracked(self):
        report = explain_optimization(SOURCE,
                                      OptimizerOptions(scheme=Scheme.LLS))
        function = report.functions["p"]
        # the loop-index families were emptied
        i_families = [f for key, f in function.families.items()
                      if key.startswith("i.") or key.startswith("-i.")]
        assert i_families
        for family in i_families:
            assert family.checks_before
            assert not family.checks_after

    def test_inserted_cond_checks_listed(self):
        report = explain_optimization(SOURCE,
                                      OptimizerOptions(scheme=Scheme.LLS))
        function = report.functions["p"]
        inserted = [cond for family in function.families.values()
                    for cond in family.cond_checks_after]
        assert any("cond-check" in text for text in inserted)

    def test_render_is_readable(self):
        report = explain_optimization(SOURCE,
                                      OptimizerOptions(scheme=Scheme.NI))
        text = report.render()
        assert "optimization report (PRX-NI)" in text
        assert "family" in text

    def test_ni_keeps_some_checks(self):
        report = explain_optimization(SOURCE,
                                      OptimizerOptions(scheme=Scheme.NI))
        function = report.functions["p"]
        survivors = sum(len(f.checks_after)
                        for f in function.families.values())
        assert survivors > 0

    def test_trap_reports_surface(self):
        bad = """
program p
  real :: a(10)
  a(11) = 1.0
  print a(1)
end program
"""
        # the trap is compile-time; executing would raise, so only
        # collect statics by giving the interpreter a run that traps
        import pytest
        from repro.errors import RangeTrap
        with pytest.raises(RangeTrap):
            explain_optimization(bad, OptimizerOptions(scheme=Scheme.NI))
