"""Tests for machine-readable (--json) reporting."""

import json

from repro.benchsuite import all_programs, run_suite
from repro.pipeline.stats import BaselineMeasurement, SchemeMeasurement
from repro.reporting import (baseline_to_dict, cell_to_dict, cells_to_list,
                             tables_to_dict)


def fake_baseline(name="alpha"):
    row = BaselineMeasurement(name)
    row.lines = 12
    row.static_instructions = 100
    row.dynamic_instructions = 1000
    row.static_checks = 40
    row.dynamic_checks = 400
    row.trace.record("parse", 0.001)
    return row


def fake_cell(name="alpha", label="PRX-LLS"):
    cell = SchemeMeasurement(name, label)
    cell.baseline_checks = 400
    cell.dynamic_checks = 4
    cell.static_checks = 7
    cell.optimize_seconds = 0.01
    cell.trace.record("frontend", 0.0, cached=True)
    cell.trace.record("check-optimize", 0.01)
    return cell


class TestDictShapes:
    def test_baseline_fields(self):
        data = baseline_to_dict(fake_baseline())
        assert data["program"] == "alpha"
        assert data["dynamic_checks"] == 400
        assert data["dynamic_ratio"] == 40.0
        assert data["passes"][0]["pass"] == "parse"

    def test_cell_fields(self):
        data = cell_to_dict(fake_cell())
        assert data["config"] == "PRX-LLS"
        assert data["percent_eliminated"] == 99.0
        assert data["frontend_cached"] is True
        assert [p["pass"] for p in data["passes"]] == \
            ["frontend", "check-optimize"]

    def test_everything_is_json_serializable(self):
        blob = json.dumps({
            "row": baseline_to_dict(fake_baseline()),
            "cell": cell_to_dict(fake_cell()),
        }, sort_keys=True)
        assert "PRX-LLS" in blob


class TestCellOrdering:
    def test_flattened_in_config_then_program_order(self):
        cells = {("PRX-NI", "beta"): fake_cell("beta", "PRX-NI"),
                 ("PRX-NI", "alpha"): fake_cell("alpha", "PRX-NI"),
                 ("PRX-LLS", "alpha"): fake_cell("alpha", "PRX-LLS")}
        out = cells_to_list(cells, ["PRX-NI", "PRX-LLS"], ["alpha", "beta"])
        assert [(c["config"], c["program"]) for c in out] == \
            [("PRX-NI", "alpha"), ("PRX-NI", "beta"), ("PRX-LLS", "alpha")]

    def test_missing_cells_skipped(self):
        cells = {("PRX-NI", "alpha"): fake_cell("alpha", "PRX-NI")}
        out = cells_to_list(cells, ["PRX-NI"], ["alpha", "ghost"])
        assert len(out) == 1


class TestTablesDocument:
    def test_real_suite_document(self):
        suite = run_suite(all_programs()[:1], small=True, jobs=1)
        doc = tables_to_dict(suite, True, ["PRX-NI", "PRX-LLS"],
                             ["PRX-NI", "PRX-NI'"])
        assert doc["schema"] == "repro.tables.v1"
        assert doc["small"] is True
        assert doc["programs"] == suite.names
        assert len(doc["table1"]) == 1
        assert all(cell["baseline_checks"] > 0 for cell in doc["table2"])
        name = suite.names[0]
        assert doc["cache"][name]["frontend_compiles"] == 1
        json.dumps(doc, sort_keys=True)  # must be serializable
