"""Tests for the random program generator."""

from repro.errors import ReproError
from repro.frontend.parser import parse_source
from repro.fuzz import GeneratorConfig, ProgramGenerator, generate_program

SEEDS = range(40)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 7, 123):
            assert generate_program(seed) == generate_program(seed)

    def test_seeds_diversify(self):
        programs = {generate_program(seed) for seed in SEEDS}
        # near-total diversity; exact collisions would mean the seed
        # is not actually feeding the generator
        assert len(programs) > len(SEEDS) * 3 // 4


class TestWellFormedness:
    def test_every_program_parses(self):
        for seed in SEEDS:
            source = generate_program(seed)
            try:
                parse_source(source)
            except ReproError as error:  # pragma: no cover
                raise AssertionError(
                    "seed %d generated an unparsable program: %s\n%s"
                    % (seed, error, source))

    def test_shape(self):
        source = generate_program(3)
        lines = source.splitlines()
        assert lines[0] == "program fuzz"
        # generated subroutines are appended after the main program
        assert lines[-1] in ("end program", "end subroutine")
        assert "end program" in lines
        assert any(line.strip().startswith("input integer :: n")
                   for line in lines)
        assert any("print" in line for line in lines)

    def test_subroutines_emitted(self):
        sub_seeds = [seed for seed in SEEDS
                     if "subroutine" in generate_program(seed)]
        call_seeds = [seed for seed in SEEDS
                      if "call " in generate_program(seed)]
        # the interprocedural plane must actually be exercised
        assert len(sub_seeds) > len(SEEDS) // 2
        assert call_seeds
        source = generate_program(sub_seeds[0])
        parse_source(source)

    def test_config_bounds_respected(self):
        import re
        config = GeneratorConfig(max_depth=1, max_statements=2,
                                 max_arrays=1)
        source = ProgramGenerator(11, config).generate()
        assert len(re.findall(r":: a\d+\(", source)) <= 1
        parse_source(source)
