"""Tests for the test-case shrinker and campaign runner plumbing."""

from repro.fuzz import (FuzzFailure, Oracle, make_predicate, read_corpus,
                        shrink, write_corpus_entry)
from repro.fuzz.runner import corpus_filename

BLOATED = """
program p
  input integer :: n = 5
  integer :: i, j, s
  real :: a(10), b(10)
  s = 0
  do i = 1, n
    a(i) = 1.0
    s = s + 1
  end do
  do j = 1, n
    b(j) = 2.0
  end do
  a(99) = 1.0
  print s
end program
"""


class TestShrink:
    def test_greedy_removal_keeps_poison_line(self):
        poison = "a(99) = 1.0"
        small = shrink(BLOATED, lambda source: poison in source)
        assert poison in small
        # both loops and the bookkeeping statements are irrelevant
        assert "do j" not in small
        assert "do i" not in small
        assert len(small.splitlines()) < len(BLOATED.splitlines()) // 2

    def test_predicate_exceptions_reject_candidate(self):
        # a predicate that dies on everything shrinks nothing
        def explosive(source):
            if source != BLOATED:
                raise RuntimeError("boom")
            return True
        assert shrink(BLOATED, explosive) == BLOATED

    def test_make_predicate_shrinks_real_failure(self):
        source = BLOATED.replace("a(99) = 1.0", "wat")
        oracle = Oracle(configs=[])
        failure = oracle.check(source, seed=7)
        assert failure is not None and failure.kind == "frontend-error"
        predicate = make_predicate(oracle, failure.kind, failure.config,
                                   failure.seed)
        small = shrink(source, predicate)
        assert "wat" in small
        assert len(small) < len(source)
        # the shrunken program still reproduces the same failure
        assert oracle.check(small).kind == "frontend-error"


class TestShrinkEngineReplay:
    """Regression: shrinking must replay the tier-2 specialized engine.

    A shrunk reproducer is only trustworthy if every candidate was
    validated under the same engines that exposed the original
    failure; silently dropping ``specialized`` from the replay would
    let the shrinker "minimize away" a tier-2-only divergence."""

    def test_specialized_engine_replayed_during_shrink(self, monkeypatch):
        from repro.fuzz import oracle as oracle_mod
        from repro.fuzz.runner import shrink_failure

        seen = []
        real = oracle_mod._run_compiled

        def spy(program, inputs, max_steps, engine="compiled"):
            seen.append(engine)
            return real(program, inputs, max_steps, engine=engine)

        monkeypatch.setattr(oracle_mod, "_run_compiled", spy)
        # the failure need not reproduce: the predicate still drives
        # the oracle over each candidate, which is what we audit
        failure = FuzzFailure("output-mismatch", 3, BLOATED, "PRX-SPEC",
                              "synthetic")
        shrink_failure(failure, engines=True)
        assert "specialized" in seen
        assert "compiled" in seen

    def test_engines_flag_off_skips_backends(self, monkeypatch):
        from repro.fuzz import oracle as oracle_mod
        from repro.fuzz.runner import shrink_failure

        seen = []

        def spy(program, inputs, max_steps, engine="compiled"):
            seen.append(engine)
            return oracle_mod._RunResult([], False, None)

        monkeypatch.setattr(oracle_mod, "_run_compiled", spy)
        failure = FuzzFailure("output-mismatch", 3, BLOATED, "PRX-SPEC",
                              "synthetic")
        shrink_failure(failure, engines=False)
        assert seen == []


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        failure = FuzzFailure("safety", 17, BLOATED, "PRX-LLS",
                              "first line\nsecond line")
        path = write_corpus_entry(str(tmp_path), failure)
        assert path.endswith(corpus_filename(failure))
        entries = read_corpus(str(tmp_path))
        assert len(entries) == 1
        entry = entries[0]
        assert entry["seed"] == "17"
        assert entry["kind"] == "safety"
        assert entry["config"] == "PRX-LLS"
        assert "program p" in entry["source"]

    def test_filename_flattens_label(self):
        failure = FuzzFailure("count-regression", 3, "x", "INX-NI'", "d")
        assert corpus_filename(failure) == \
            "count-regression_inx-nip_seed3.f"

    def test_read_missing_dir(self, tmp_path):
        assert read_corpus(str(tmp_path / "nope")) == []
