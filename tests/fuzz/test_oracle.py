"""Tests for the differential safety oracle."""

from repro.checks.config import (CheckKind, ImplicationMode, OptimizerOptions,
                                 Scheme)
from repro.fuzz import (Oracle, all_configurations, config_by_label,
                        generate_program)

CLEAN = """
program p
  input integer :: n = 8
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(3)
end program
"""

TRAPPING = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(3)
end program
"""

# configs covering every scheme once: cheap enough for unit tests
FAST = [OptimizerOptions(scheme=s) for s in Scheme]


class TestConfigurationMatrix:
    def test_full_matrix_size(self):
        assert len(all_configurations()) == \
            len(Scheme) * len(CheckKind) * len(ImplicationMode)

    def test_labels_resolve_first_in_matrix_order(self):
        table = config_by_label()
        for label, options in table.items():
            assert options.label() == label
        # the primed NI label is ambiguous (NONE and CROSS_FAMILY
        # produce it); matrix order says NONE wins
        primed = [o for o in all_configurations()
                  if o.label() == "PRX-NI'"]
        assert len(primed) > 1
        assert table["PRX-NI'"].implication is primed[0].implication


class TestOracleVerdicts:
    def test_clean_program_passes(self):
        assert Oracle(configs=FAST).check(CLEAN, seed=0) is None

    def test_trapping_program_passes(self):
        # trap parity across configurations is a pass, not a failure
        assert Oracle(configs=FAST).check(TRAPPING, seed=0) is None

    def test_frontend_error_classified(self):
        failure = Oracle(configs=FAST).check("program p\nwat\nend program")
        assert failure is not None
        assert failure.kind == "frontend-error"
        assert failure.config == "<baseline>"

    def test_generated_programs_pass(self):
        oracle = Oracle(configs=FAST)
        for seed in range(5):
            failure = oracle.check(generate_program(seed), seed=seed)
            assert failure is None, failure.describe()

    def test_describe_mentions_config_and_seed(self):
        failure = Oracle(configs=FAST).check("program p\nwat\nend program",
                                             seed=42)
        text = failure.describe()
        assert "frontend-error" in text and "42" in text


class TestTrainedLOShard:
    """The LO fuzz shard: beyond the matrix pass (which covers the
    no-profile degradation), any LO config triggers a trained pass that
    self-trains a profile and asserts LO never runs more
    profile-weighted dynamic checks than LLS (kind ``lospre-regression``
    on violation)."""

    def _shard(self):
        table = config_by_label()
        return Oracle(configs=[table["PRX-LO"], table["INX-LO"]])

    def test_shard_labels_resolve(self):
        table = config_by_label()
        assert "PRX-LO" in table and "INX-LO" in table
        assert table["PRX-LO"].scheme is Scheme.LO

    def test_clean_program_passes(self):
        assert self._shard().check(CLEAN, seed=0) is None

    def test_trapping_program_passes(self):
        # the training run traps too, leaving a truncated profile —
        # exactly the input class where the min cut actually fires
        assert self._shard().check(TRAPPING, seed=0) is None

    def test_generated_programs_pass(self):
        oracle = self._shard()
        for seed in range(5):
            failure = oracle.check(generate_program(seed), seed=seed)
            assert failure is None, failure.describe()


class TestLimitParity:
    """Both engines run under the same fuel and depth budgets."""

    def _compare(self, compiled_error):
        from repro.fuzz.oracle import _RunResult

        interp = _RunResult([1.0], False, None)
        compiled = _RunResult(None, False, None, error=compiled_error)
        return Oracle(configs=FAST)._compare_engines(
            interp, compiled, 0, "<source>", "PRX-LLS")

    def test_compiled_only_step_limit_is_tolerated(self):
        # destructed SSA burns extra fuel on phi copies, so the
        # back-end may exhaust max_steps where the interpreter finished
        from repro.errors import StepLimitError

        assert self._compare(
            StepLimitError("execution exceeded 100 steps")) is None

    def test_compiled_only_call_depth_is_a_failure(self):
        # call depth is 1:1 between engines; divergence is a real bug
        from repro.errors import CallDepthError

        failure = self._compare(
            CallDepthError("call depth exceeded 200 (runaway recursion?)"))
        assert failure is not None
        assert failure.kind == "limit-parity"

    def test_other_backend_errors_still_report(self):
        from repro.errors import InterpError

        failure = self._compare(InterpError("boom"))
        assert failure is not None
        assert failure.kind == "engine-mismatch"

    def test_oracle_runs_compiled_with_its_own_fuel(self):
        # a loop that finishes for the interpreter inside max_steps but
        # whose destructed form needs more: the oracle must not report
        import inspect

        from repro.fuzz.oracle import _run_compiled

        signature = inspect.signature(_run_compiled)
        assert "max_steps" in signature.parameters
