"""Tests for the differential safety oracle."""

from repro.checks.config import (CheckKind, ImplicationMode, OptimizerOptions,
                                 Scheme)
from repro.fuzz import (Oracle, all_configurations, config_by_label,
                        generate_program, inline_configurations)
from repro.fuzz.oracle import INLINE_SCHEMES

CLEAN = """
program p
  input integer :: n = 8
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(3)
end program
"""

TRAPPING = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(3)
end program
"""

# configs covering every scheme once: cheap enough for unit tests
FAST = [OptimizerOptions(scheme=s) for s in Scheme]


class TestConfigurationMatrix:
    def test_full_matrix_size(self):
        assert len(all_configurations()) == \
            len(Scheme) * len(CheckKind) * len(ImplicationMode)

    def test_labels_resolve_first_in_matrix_order(self):
        table = config_by_label()
        for label, options in table.items():
            assert options.label() == label
        # the primed NI label is ambiguous (NONE and CROSS_FAMILY
        # produce it); matrix order says NONE wins
        primed = [o for o in all_configurations()
                  if o.label() == "PRX-NI'"]
        assert len(primed) > 1
        assert table["PRX-NI'"].implication is primed[0].implication


class TestOracleVerdicts:
    def test_clean_program_passes(self):
        assert Oracle(configs=FAST).check(CLEAN, seed=0) is None

    def test_trapping_program_passes(self):
        # trap parity across configurations is a pass, not a failure
        assert Oracle(configs=FAST).check(TRAPPING, seed=0) is None

    def test_frontend_error_classified(self):
        failure = Oracle(configs=FAST).check("program p\nwat\nend program")
        assert failure is not None
        assert failure.kind == "frontend-error"
        assert failure.config == "<baseline>"

    def test_generated_programs_pass(self):
        oracle = Oracle(configs=FAST)
        for seed in range(5):
            failure = oracle.check(generate_program(seed), seed=seed)
            assert failure is None, failure.describe()

    def test_describe_mentions_config_and_seed(self):
        failure = Oracle(configs=FAST).check("program p\nwat\nend program",
                                             seed=42)
        text = failure.describe()
        assert "frontend-error" in text and "42" in text


class TestTrainedLOShard:
    """The LO fuzz shard: beyond the matrix pass (which covers the
    no-profile degradation), any LO config triggers a trained pass that
    self-trains a profile and asserts LO never runs more
    profile-weighted dynamic checks than LLS (kind ``lospre-regression``
    on violation)."""

    def _shard(self):
        table = config_by_label()
        return Oracle(configs=[table["PRX-LO"], table["INX-LO"]])

    def test_shard_labels_resolve(self):
        table = config_by_label()
        assert "PRX-LO" in table and "INX-LO" in table
        assert table["PRX-LO"].scheme is Scheme.LO

    def test_clean_program_passes(self):
        assert self._shard().check(CLEAN, seed=0) is None

    def test_trapping_program_passes(self):
        # the training run traps too, leaving a truncated profile —
        # exactly the input class where the min cut actually fires
        assert self._shard().check(TRAPPING, seed=0) is None

    def test_generated_programs_pass(self):
        oracle = self._shard()
        for seed in range(5):
            failure = oracle.check(generate_program(seed), seed=seed)
            assert failure is None, failure.describe()


CROSS_CALL = """
program p
  input integer :: n = 6
  integer :: i
  real :: a(1:n)
  do i = 1, n
    a(i) = real(i)
    call put(n, i, a)
  end do
  print a(1)
end program

subroutine put(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = x(j) + 1.0
end subroutine
"""

CROSS_CALL_TRAP = CROSS_CALL.replace("input integer :: n = 6",
                                     "input integer :: n = 6, bad = 9") \
                            .replace("call put(n, i, a)",
                                     "call put(n, bad, a)")


class TestInlineShard:
    """The inline fuzz shard: paired inline-on/off configurations with
    the NI-only ``inline-regression`` invariant (inlining may only
    expose facts under pure elimination, never remove them)."""

    def test_inline_configurations_shape(self):
        configs = inline_configurations()
        assert len(configs) == len(INLINE_SCHEMES) * len(CheckKind)
        for options in configs:
            assert options.inline
            assert options.implication is ImplicationMode.ALL
            assert options.label().endswith("+inl")

    def test_matrix_size_unchanged_by_inline_configs(self):
        # inline configs ride in a separate list: the paper's full
        # matrix keeps its exact Scheme x Kind x Implication size
        assert all(not getattr(o, "inline", False)
                   for o in all_configurations())

    def test_inline_labels_resolve(self):
        table = config_by_label()
        for options in inline_configurations():
            label = options.label()
            assert label in table
            assert table[label].inline
            # and the non-inlined twin resolves too (the pairing the
            # regression invariant depends on)
            assert label.replace("+inl", "") in table

    def test_default_oracle_includes_inline_configs(self):
        oracle = Oracle()
        assert any(getattr(o, "inline", False) for o in oracle.configs)

    def _shard(self):
        table = config_by_label()
        labels = ["PRX-NI", "INX-NI", "PRX-NI+inl", "INX-NI+inl",
                  "PRX-LLS+inl", "INX-LLS+inl"]
        return Oracle(configs=[table[label] for label in labels])

    def test_cross_call_program_passes(self):
        assert self._shard().check(CROSS_CALL, seed=0) is None

    def test_cross_call_trap_passes(self):
        # trap parity inline-on vs inline-off is a pass
        assert self._shard().check(CROSS_CALL_TRAP, seed=0) is None

    def test_generated_programs_pass(self):
        oracle = self._shard()
        for seed in range(5):
            failure = oracle.check(generate_program(seed), seed=seed)
            assert failure is None, failure.describe()

    def test_regression_invariant_fires(self):
        # a fabricated effective-count table where the inlined NI run
        # did MORE work than its twin must be flagged
        oracle = self._shard()
        table = config_by_label()
        failure = oracle._check_inline_pairs(
            {"INX-NI": 10, "INX-NI+inl": 11}, 7, "<source>")
        assert failure is not None
        assert failure.kind == "inline-regression"
        assert failure.config == "INX-NI+inl"

    def test_regression_invariant_ni_only(self):
        # LLS pairs are exempt: hoisting reasons about the (changed)
        # loop nests, so no monotonicity theorem holds
        oracle = self._shard()
        failure = oracle._check_inline_pairs(
            {"INX-LLS": 10, "INX-LLS+inl": 11}, 7, "<source>")
        assert failure is None

    def test_regression_invariant_skips_unpaired_runs(self):
        oracle = self._shard()
        assert oracle._check_inline_pairs(
            {"INX-NI+inl": 11}, 7, "<source>") is None
        assert oracle._check_inline_pairs(
            {"INX-NI": 5, "INX-NI+inl": 5}, 7, "<source>") is None


class TestLimitParity:
    """Both engines run under the same fuel and depth budgets."""

    def _compare(self, compiled_error):
        from repro.fuzz.oracle import _RunResult

        interp = _RunResult([1.0], False, None)
        compiled = _RunResult(None, False, None, error=compiled_error)
        return Oracle(configs=FAST)._compare_engines(
            interp, compiled, 0, "<source>", "PRX-LLS")

    def test_compiled_only_step_limit_is_tolerated(self):
        # destructed SSA burns extra fuel on phi copies, so the
        # back-end may exhaust max_steps where the interpreter finished
        from repro.errors import StepLimitError

        assert self._compare(
            StepLimitError("execution exceeded 100 steps")) is None

    def test_compiled_only_call_depth_is_a_failure(self):
        # call depth is 1:1 between engines; divergence is a real bug
        from repro.errors import CallDepthError

        failure = self._compare(
            CallDepthError("call depth exceeded 200 (runaway recursion?)"))
        assert failure is not None
        assert failure.kind == "limit-parity"

    def test_other_backend_errors_still_report(self):
        from repro.errors import InterpError

        failure = self._compare(InterpError("boom"))
        assert failure is not None
        assert failure.kind == "engine-mismatch"

    def test_oracle_runs_compiled_with_its_own_fuel(self):
        # a loop that finishes for the interpreter inside max_steps but
        # whose destructed form needs more: the oracle must not report
        import inspect

        from repro.fuzz.oracle import _run_compiled

        signature = inspect.signature(_run_compiled)
        assert "max_steps" in signature.parameters
