"""Tests for the compiled-module cache (:class:`BackendCache`)."""

import os

from repro.backend.pybackend import ENGINE_VERSION
from repro.interp import Machine
from repro.pipeline import (BackendCache, compile_source,
                            reset_shared_backend_cache,
                            shared_backend_cache)
from repro.pipeline.trace import PipelineTrace

from ..conftest import lower_ssa


SOURCE = """
program p
  input integer :: n = 6
  real :: a(10)
  integer :: i
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""


class TestMemoryLayer:
    def test_second_compile_is_a_hit(self):
        cache = BackendCache()
        first = cache.compiled(lower_ssa(SOURCE))
        second = cache.compiled(lower_ssa(SOURCE))
        stats = cache.stats()
        assert stats["translations"] == 1
        assert stats["hits"] == 1
        assert first is second  # compiled modules are shareable

    def test_key_carries_engine_version(self):
        key = BackendCache.key(lower_ssa(SOURCE))
        assert key.endswith("-e%d" % ENGINE_VERSION)

    def test_distinct_programs_get_distinct_keys(self):
        other = SOURCE.replace("a(n)", "a(1)")
        assert BackendCache.key(lower_ssa(SOURCE)) != \
            BackendCache.key(lower_ssa(other))

    def test_source_module_is_not_mutated(self):
        # translation destructs SSA on a clone, never on the argument
        module = lower_ssa(SOURCE)
        had_phis = any(block.phis()
                       for function in module
                       for block in function.blocks)
        BackendCache().compiled(module)
        still_has = any(block.phis()
                        for function in module
                        for block in function.blocks)
        assert had_phis == still_has

    def test_cached_module_matches_interpreter(self):
        cache = BackendCache()
        compiled = cache.compiled(lower_ssa(SOURCE))
        runtime = compiled.run({"n": 6})
        machine = Machine(lower_ssa(SOURCE), {"n": 6})
        machine.run()
        assert runtime.output == machine.output
        assert runtime.counters.checks == machine.counters.checks
        assert runtime.counters.instructions == \
            machine.counters.instructions

    def test_eviction_bound(self):
        cache = BackendCache(max_entries=1)
        cache.compiled(lower_ssa(SOURCE))
        cache.compiled(lower_ssa(SOURCE.replace("a(n)", "a(1)")))
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 1


SPEC_SOURCE = """
program p
  input integer :: n = 6
  real :: a(10)
  integer :: i
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""


class TestSchemeSensitiveKeys:
    """Regression (check-configuration audit): the cache key is the
    printed IR, so every semantic difference the optimizer introduces
    must reach an instruction's ``__str__``.  A SpecGuard that printed
    only its destination would let two different envelope guards
    collide on one cached compiled module."""

    @staticmethod
    def _key(scheme):
        from repro.checks.config import OptimizerOptions
        program = compile_source(SPEC_SOURCE,
                                 OptimizerOptions(scheme=scheme))
        return BackendCache.key(program.module)

    def test_spec_and_lls_schemes_get_distinct_keys(self):
        from repro.checks.config import Scheme
        assert self._key(Scheme.SPEC) != self._key(Scheme.LLS)

    def test_envelope_bound_reaches_the_key(self):
        from repro.checks.config import OptimizerOptions, Scheme
        from repro.ir.instructions import SpecGuard

        program = compile_source(SPEC_SOURCE,
                                 OptimizerOptions(scheme=Scheme.SPEC))
        module = program.module
        before = BackendCache.key(module)
        guards = [inst for function in module
                  for inst in function.instructions()
                  if isinstance(inst, SpecGuard)]
        assert guards, "SPEC should have versioned the loop"
        # modules identical except for one envelope bound must not
        # share a cache entry
        guards[0].guards[0].bound += 1
        assert BackendCache.key(module) != before

    def test_trip_pre_guard_reaches_the_key(self):
        from repro.checks.config import OptimizerOptions, Scheme
        from repro.ir.instructions import SpecGuard

        program = compile_source(SPEC_SOURCE,
                                 OptimizerOptions(scheme=Scheme.SPEC))
        module = program.module
        before = BackendCache.key(module)
        guards = [inst for function in module
                  for inst in function.instructions()
                  if isinstance(inst, SpecGuard)]
        assert guards and guards[0].pre_guards
        guards[0].pre_guards[0].bound += 1
        assert BackendCache.key(module) != before


class TestDiskLayer:
    def test_fresh_instance_hits_disk(self, tmp_path):
        writer = BackendCache(disk_dir=str(tmp_path))
        writer.compiled(lower_ssa(SOURCE))
        reader = BackendCache(disk_dir=str(tmp_path))
        compiled = reader.compiled(lower_ssa(SOURCE))
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["translations"] == 0
        assert compiled.run({"n": 6}).output == [6.0]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        writer = BackendCache(disk_dir=str(tmp_path))
        module = lower_ssa(SOURCE)
        writer.compiled(module)
        entry = os.path.join(str(tmp_path),
                             "%s.pybackend.pickle" % BackendCache.key(module))
        with open(entry, "wb") as handle:
            handle.write(b"not a pickle")
        reader = BackendCache(disk_dir=str(tmp_path))
        reader.compiled(lower_ssa(SOURCE))
        assert reader.stats()["translations"] == 1


class TestIntegration:
    def test_run_compiled_records_cached_trace_event(self):
        cache = BackendCache()
        program = compile_source(SOURCE)
        program.run_compiled({"n": 6}, backend_cache=cache)
        trace = PipelineTrace()
        again = compile_source(SOURCE, trace=trace)
        again.run_compiled({"n": 6}, backend_cache=cache)
        events = [event for event in trace.events
                  if event.name == "backend"]
        assert events and events[0].cached

    def test_shared_cache_is_a_singleton(self):
        reset_shared_backend_cache()
        try:
            assert shared_backend_cache() is shared_backend_cache()
        finally:
            reset_shared_backend_cache()
