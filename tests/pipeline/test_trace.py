"""Tests for per-pass pipeline tracing."""

import time

from repro.pipeline import PipelineTrace, compile_source
from repro.pipeline.trace import PassEvent


class TestPipelineTrace:
    def test_record_appends_events(self):
        trace = PipelineTrace()
        trace.record("parse", 0.5)
        trace.record("lower", 0.25, size_after=10)
        assert len(trace) == 2
        assert [e.name for e in trace] == ["parse", "lower"]
        assert trace.total_seconds == 0.75

    def test_timed_measures_wall_time(self):
        trace = PipelineTrace()
        with trace.timed("sleepy") as event:
            time.sleep(0.01)
            event.size_after = 7
        assert trace.events[0].seconds >= 0.01
        assert trace.events[0].size_after == 7

    def test_run_count_ignores_cached(self):
        trace = PipelineTrace()
        trace.record("parse", 0.1)
        trace.record("parse", 0.0, cached=True)
        assert trace.run_count("parse") == 1
        assert trace.run_count("parse", include_cached=True) == 2

    def test_seconds_filters_by_name(self):
        trace = PipelineTrace()
        trace.record("a", 1.0)
        trace.record("b", 2.0)
        assert trace.seconds("a") == 1.0
        assert trace.seconds() == 3.0

    def test_extend_shares_events(self):
        one, two = PipelineTrace(), PipelineTrace()
        two.record("ssa", 0.1)
        one.extend(two)
        assert [e.name for e in one] == ["ssa"]

    def test_as_dict_shape(self):
        trace = PipelineTrace()
        trace.record("parse", 0.1, counters={"tokens": 5})
        data = trace.as_dict()
        assert data["total_seconds"] == 0.1
        assert data["events"][0]["pass"] == "parse"
        assert data["events"][0]["counters"] == {"tokens": 5}
        assert "cached" not in data["events"][0]

    def test_event_size_delta(self):
        event = PassEvent("x", 0.0, size_before=10, size_after=4)
        assert event.size_delta == -6

    def test_frontend_was_cached(self):
        trace = PipelineTrace()
        trace.record("frontend", 0.0, cached=True)
        assert trace.frontend_was_cached()
        assert not PipelineTrace().frontend_was_cached()


class TestCompileSourceTrace:
    def test_default_pipeline_passes(self, loop_program):
        program = compile_source(loop_program)
        names = [e.name for e in program.trace]
        assert names == ["parse", "lower", "ssa", "check-optimize"]
        assert all(e.seconds >= 0.0 for e in program.trace)

    def test_optimize_event_counters(self, loop_program):
        program = compile_source(loop_program)
        event = program.trace.events[-1]
        assert event.counters["checks_before"] > event.counters["checks_after"]

    def test_rotate_and_gvn_appear(self, loop_program):
        program = compile_source(loop_program, rotate_loops=True,
                                 value_number=True)
        names = [e.name for e in program.trace]
        assert names == ["parse", "lower", "rotate", "ssa", "gvn",
                         "check-optimize"]

    def test_unoptimized_stops_at_frontend(self, loop_program):
        program = compile_source(loop_program, optimize=False)
        names = [e.name for e in program.trace]
        assert "check-optimize" not in names
        assert "parse" in names

    def test_ssa_size_growth_recorded(self, loop_program):
        program = compile_source(loop_program)
        ssa_event = next(e for e in program.trace if e.name == "ssa")
        assert ssa_event.size_after >= ssa_event.size_before > 0

    def test_caller_trace_is_used(self, loop_program):
        trace = PipelineTrace()
        program = compile_source(loop_program, trace=trace)
        assert program.trace is trace
        assert trace.run_count("parse") == 1
