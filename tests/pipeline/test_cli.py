"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
program demo
  input integer :: n = 20
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.f"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_output(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=10"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "10.0"
        assert "range checks executed" in captured.err

    def test_run_uses_defaults(self, source_file, capsys):
        code = main(["run", source_file])
        assert code == 0
        assert capsys.readouterr().out.strip() == "20.0"

    def test_run_unoptimized(self, source_file, capsys):
        main(["run", source_file, "--no-optimize"])
        err = capsys.readouterr().err
        assert "42 range checks" in err  # 2 per iteration + 2 post-loop

    def test_trap_exit_code(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=60"])
        assert code == 2
        assert "TRAP" in capsys.readouterr().err

    def test_scheme_selection(self, source_file, capsys):
        main(["run", source_file, "--scheme", "NI"])
        err1 = capsys.readouterr().err
        main(["run", source_file, "--scheme", "LLS"])
        err2 = capsys.readouterr().err
        assert err1 != err2

    def test_rotate_flag(self, source_file, capsys):
        code = main(["run", source_file, "--scheme", "SE",
                     "--rotate-loops"])
        assert code == 0

    def test_bad_input_format(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--input", "n"])

    def test_missing_file(self, capsys):
        code = main(["run", "/nonexistent/path.f"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text("program p\nif then\nend program")
        code = main(["run", str(bad)])
        assert code == 1


class TestDumpAndCompare:
    def test_dump_shows_ir(self, source_file, capsys):
        code = main(["dump", source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "program demo" in out
        assert "cond-check" in out  # LLS hoisted something

    def test_dump_unoptimized_has_plain_checks(self, source_file, capsys):
        main(["dump", source_file, "--no-optimize"])
        out = capsys.readouterr().out
        assert "check (" in out

    def test_compare_lists_all_schemes(self, source_file, capsys):
        code = main(["compare", source_file, "--input", "n=15"])
        out = capsys.readouterr().out
        assert code == 0
        for scheme in ("NI", "CS", "LNI", "SE", "LI", "LLS", "ALL", "MCM"):
            assert scheme in out


class TestFigures:
    def test_figures_render(self, capsys):
        code = main(["figures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure1" in out
        assert "figure6" in out


class TestExplain:
    def test_explain_renders_report(self, source_file, capsys):
        code = main(["explain", source_file, "--scheme", "LLS"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimization report (PRX-LLS)" in out
        assert "eliminated" in out

    def test_explain_respects_kind(self, source_file, capsys):
        code = main(["explain", source_file, "--kind", "INX"])
        out = capsys.readouterr().out
        assert code == 0
        assert "INX-LLS" in out

    def test_run_compiled_engine(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=10",
                     "--engine", "compiled"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "10.0"
