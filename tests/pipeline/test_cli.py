"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
program demo
  input integer :: n = 20
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.f"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_output(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=10"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "10.0"
        assert "range checks executed" in captured.err

    def test_run_uses_defaults(self, source_file, capsys):
        code = main(["run", source_file])
        assert code == 0
        assert capsys.readouterr().out.strip() == "20.0"

    def test_run_unoptimized(self, source_file, capsys):
        main(["run", source_file, "--no-optimize"])
        err = capsys.readouterr().err
        assert "42 range checks" in err  # 2 per iteration + 2 post-loop

    def test_trap_exit_code(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=60"])
        assert code == 1
        assert "TRAP" in capsys.readouterr().err

    def test_scheme_selection(self, source_file, capsys):
        main(["run", source_file, "--scheme", "NI"])
        err1 = capsys.readouterr().err
        main(["run", source_file, "--scheme", "LLS"])
        err2 = capsys.readouterr().err
        assert err1 != err2

    def test_rotate_flag(self, source_file, capsys):
        code = main(["run", source_file, "--scheme", "SE",
                     "--rotate-loops"])
        assert code == 0

    def test_bad_input_format(self, source_file):
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--input", "n"])
        assert info.value.code == 2

    def test_non_numeric_input_is_clean_exit(self, source_file, capsys):
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--input", "n=abc"])
        assert info.value.code == 2
        assert "not a decimal number" in capsys.readouterr().err

    def test_hex_input_is_clean_exit(self, source_file, capsys):
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--input", "n=0x10"])
        assert info.value.code == 2
        assert "0x10" in capsys.readouterr().err

    def test_missing_name_is_clean_exit(self, source_file):
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--input", "=5"])
        assert info.value.code == 2

    def test_missing_file(self, capsys):
        code = main(["run", "/nonexistent/path.f"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text("program p\nif then\nend program")
        code = main(["run", str(bad)])
        assert code == 2


class TestDumpAndCompare:
    def test_dump_shows_ir(self, source_file, capsys):
        code = main(["dump", source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "program demo" in out
        assert "cond-check" in out  # LLS hoisted something

    def test_dump_unoptimized_has_plain_checks(self, source_file, capsys):
        main(["dump", source_file, "--no-optimize"])
        out = capsys.readouterr().out
        assert "check (" in out

    def test_compare_lists_all_schemes(self, source_file, capsys):
        code = main(["compare", source_file, "--input", "n=15"])
        out = capsys.readouterr().out
        assert code == 0
        for scheme in ("NI", "CS", "LNI", "SE", "LI", "LLS", "ALL", "MCM"):
            assert scheme in out


class TestErrorPaths:
    """main() must never leak a raw traceback for user-triggered
    failures — unexpected exceptions get a bounded message."""

    def test_unexpected_exception_is_bounded(self, capsys, monkeypatch):
        import repro.cli as cli

        def explode(args):
            raise KeyError("x" * 1000)

        monkeypatch.setattr(cli, "_cmd_figures", explode)
        code = cli.main(["figures"])
        err = capsys.readouterr().err
        assert code == 3
        assert "internal error: KeyError" in err
        assert len(err) < 400
        assert "Traceback" not in err

    def test_recursion_error_has_friendly_message(self, capsys,
                                                  monkeypatch):
        import repro.cli as cli

        def explode(args):
            raise RecursionError("maximum recursion depth exceeded")

        monkeypatch.setattr(cli, "_cmd_figures", explode)
        code = cli.main(["figures"])
        err = capsys.readouterr().err
        assert code == 3
        assert "nesting too deep" in err

    def test_deeply_nested_expression_does_not_traceback(self, tmp_path,
                                                         capsys):
        depth = 4000
        source = ("program p\n  integer :: x\n  x = %s1%s\n"
                  "  print x\nend program\n"
                  % ("(" * depth, ")" * depth))
        path = tmp_path / "deep.f"
        path.write_text(source)
        code = main(["dump", str(path)])
        err = capsys.readouterr().err
        assert code == 3
        assert "Traceback" not in err


class TestExitCodeContract:
    """The documented contract (docs/API.md): 0 ok, 1 trap,
    2 usage/parse, 3 internal.  Locked in here; the service maps the
    same classes to 200/200+trap/400-422/500."""

    def test_ok_is_zero(self, source_file):
        assert main(["run", source_file, "--input", "n=10"]) == 0

    def test_trap_is_one(self, source_file):
        assert main(["run", source_file, "--input", "n=60"]) == 1

    def test_usage_is_two(self):
        with pytest.raises(SystemExit) as info:
            main(["run", "--not-a-flag"])
        assert info.value.code == 2

    def test_unknown_engine_is_two(self, source_file, capsys):
        # every --engine taker shares the contract: exit code 2 plus a
        # single-line message, never an argparse usage dump
        for argv in (["run", source_file, "--engine", "turbo"],
                     ["tables", "--engine", "turbo"],
                     ["bench", "--engine", "turbo"]):
            with pytest.raises(SystemExit) as info:
                main(argv)
            assert info.value.code == 2
            err = capsys.readouterr().err
            assert err.count("\n") == 1
            assert "unknown engine 'turbo'" in err

    def test_bench_accepts_all_engines_keyword(self):
        # "all" is bench-only; run/tables reject it with the same
        # one-liner
        with pytest.raises(SystemExit) as info:
            main(["tables", "--engine", "all"])
        assert info.value.code == 2

    def test_parse_error_is_two(self, tmp_path):
        bad = tmp_path / "bad.f"
        bad.write_text("program p\nif then\nend program")
        assert main(["run", str(bad)]) == 2

    def test_missing_file_is_two(self):
        assert main(["run", "/nonexistent/path.f"]) == 2

    def test_profile_without_lo_is_two(self, source_file, capsys):
        # --profile only makes sense for the profile-guided scheme
        with pytest.raises(SystemExit) as info:
            main(["run", source_file, "--scheme", "LLS",
                  "--profile", "auto"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "--profile requires --scheme LO" in err

    def test_profile_missing_file_is_two(self, source_file, capsys):
        code = main(["run", source_file, "--scheme", "LO",
                     "--profile", "/nonexistent/edges.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error:")

    def test_profile_corrupt_artifact_is_two(self, source_file,
                                             tmp_path, capsys):
        bad = tmp_path / "edges.json"
        bad.write_text("{not json")
        code = main(["run", source_file, "--scheme", "LO",
                     "--profile", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err

    def test_profile_source_mismatch_is_two(self, source_file,
                                            tmp_path, capsys):
        # train on one program, replay against another: the artifact's
        # source digest no longer matches and must fail loudly
        out = tmp_path / "edges.json"
        assert main(["run", source_file, "--scheme", "LO",
                     "--profile-out", str(out)]) == 0
        capsys.readouterr()
        other = tmp_path / "other.f"
        other.write_text(SOURCE.replace("n = 20", "n = 21"))
        code = main(["run", str(other), "--scheme", "LO",
                     "--profile", str(out)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "profile" in err

    def test_profile_roundtrip_is_zero(self, source_file, tmp_path,
                                       capsys):
        out = tmp_path / "edges.json"
        assert main(["run", source_file, "--scheme", "LO",
                     "--profile-out", str(out)]) == 0
        capsys.readouterr()
        assert main(["run", source_file, "--scheme", "LO",
                     "--profile", str(out)]) == 0

    def test_internal_is_three(self, monkeypatch):
        import repro.cli as cli

        def explode(args):
            raise RuntimeError("boom")

        monkeypatch.setattr(cli, "_cmd_figures", explode)
        assert cli.main(["figures"]) == 3

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestRunJson:
    def test_run_json_document(self, source_file, capsys):
        import json

        code = main(["run", source_file, "--input", "n=10", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.run.v1"
        assert doc["ok"] is True
        assert doc["trap"] is None
        assert doc["output"] == [10.0]
        assert doc["counters"]["checks"] >= 0
        assert doc["optimizer"]["eliminated"] >= 0
        assert set(doc["phases"]) == {"parse", "optimize", "execute"}

    def test_run_json_trap(self, source_file, capsys):
        import json

        code = main(["run", source_file, "--input", "n=60", "--json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert "range check failed" in doc["trap"]


class TestTablesAndCompareFlags:
    def test_compare_json_document(self, source_file, capsys):
        import json

        code = main(["compare", source_file, "--input", "n=15", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "repro.compare.v1"
        assert doc["baseline"]["dynamic_checks"] > 0
        schemes = {cell["scheme"] for cell in doc["schemes"]}
        assert {"NI", "LLS", "MCM"} <= schemes

    def test_compare_jobs_flag_accepted(self, source_file, capsys):
        code = main(["compare", source_file, "--input", "n=15",
                     "--jobs", "2"])
        assert code == 0
        assert "LLS" in capsys.readouterr().out


class TestFigures:
    def test_figures_render(self, capsys):
        code = main(["figures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure1" in out
        assert "figure6" in out


class TestExplain:
    def test_explain_renders_report(self, source_file, capsys):
        code = main(["explain", source_file, "--scheme", "LLS"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimization report (PRX-LLS)" in out
        assert "eliminated" in out

    def test_explain_respects_kind(self, source_file, capsys):
        code = main(["explain", source_file, "--kind", "INX"])
        out = capsys.readouterr().out
        assert code == 0
        assert "INX-LLS" in out

    def test_run_compiled_engine(self, source_file, capsys):
        code = main(["run", source_file, "--input", "n=10",
                     "--engine", "compiled"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "10.0"
