"""The cross-call differential test plane for ``--inline``.

Three-engine dynamic-count parity on call-carrying and
symbolically-bounded programs, trap equivalence (including the golden
callee-name + call-line provenance suffix), zero-extent arrays, and
the BackendCache/FrontendCache identity of inline-on vs inline-off
compiles.
"""

import pytest

from repro.benchsuite import cross_call_programs
from repro.checks.config import CheckKind, OptimizerOptions, Scheme
from repro.errors import RangeTrap
from repro.interp.machine import Machine
from repro.pipeline import BackendCache, FrontendCache, compile_source

ENGINES = ("compiled", "specialized")

TRAPPING = """
program p
  input integer :: n = 5, bad = 9
  integer :: i
  real :: a(1:n)
  do i = 1, n
    a(i) = real(i)
  end do
  call put(n, bad, a)
  print a(1)
end program

subroutine put(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = x(j) + 1.0
end subroutine
"""

NESTED_TRAP = """
program p
  input integer :: n = 5, bad = 9
  real :: a(1:n)
  call outer(n, bad, a)
  print a(1)
end program

subroutine outer(m, j, x)
  integer :: m, j
  real :: x(1:m)
  call inner(m, j, x)
end subroutine

subroutine inner(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = 0.0
end subroutine
"""


def _interp(program, inputs):
    machine = Machine(program.module, inputs)
    try:
        machine.run()
    except RangeTrap as trap:
        return machine.counters, list(machine.output), str(trap)
    return machine.counters, list(machine.output), None


def _engine(program, inputs, engine):
    try:
        runtime = program.run_compiled(inputs, engine=engine)
    except RangeTrap as trap:
        runtime = trap.runtime
        return runtime.counters, list(runtime.output), str(trap)
    return runtime.counters, list(runtime.output), None


def _matrix():
    for scheme in (Scheme.NI, Scheme.LLS, Scheme.ALL):
        for kind in CheckKind:
            yield OptimizerOptions(scheme=scheme, kind=kind, inline=True)


class TestThreeEngineParity:
    @pytest.mark.parametrize("name", [p.name for p in cross_call_programs()])
    def test_cross_call_kernels(self, name):
        program_def = next(p for p in cross_call_programs()
                           if p.name == name)
        for options in _matrix():
            program = compile_source(program_def.source, options,
                                     verify_ir=True)
            counters, output, trap = _interp(program,
                                             program_def.test_inputs)
            assert trap is None
            for engine in ENGINES:
                e_counters, e_output, e_trap = _engine(
                    program, program_def.test_inputs, engine)
                assert e_trap is None
                assert e_output == output, (name, options.label(), engine)
                assert e_counters.checks == counters.checks, \
                    (name, options.label(), engine)

    def test_zero_extent_arrays(self):
        # n = 0: symbolic bounds make every array empty; the inlined
        # clones' loops must run zero times in every engine
        program_def = cross_call_programs()[0]
        inputs = dict(program_def.test_inputs)
        inputs["n"] = 0
        for options in _matrix():
            program = compile_source(program_def.source, options,
                                     verify_ir=True)
            counters, output, trap = _interp(program, inputs)
            assert trap is None
            for engine in ENGINES:
                e_counters, e_output, e_trap = _engine(program, inputs,
                                                       engine)
                assert e_trap is None
                assert e_output == output
                assert e_counters.checks == counters.checks


class TestTrapEquivalence:
    def test_all_engines_trap_inline_off(self):
        options = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX)
        program = compile_source(TRAPPING, options)
        _, _, trap = _interp(program, {"n": 5, "bad": 9})
        assert trap is not None
        for engine in ENGINES:
            _, _, e_trap = _engine(program, {"n": 5, "bad": 9}, engine)
            assert e_trap is not None

    def test_golden_trap_provenance(self):
        """The golden contract of satellite (d): a trap inside an
        inlined region names the callee and the call line, in every
        engine, with the caller's symbols in the canonical form."""
        options = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX,
                                   inline=True)
        program = compile_source(TRAPPING, options)
        _, _, trap = _interp(program, {"n": 5, "bad": 9})
        assert trap == ("range check failed: bad-n = 4 > 0 "
                        "(array a, upper bound) in put (call at line 9)")
        for engine in ENGINES:
            _, _, e_trap = _engine(program, {"n": 5, "bad": 9}, engine)
            # the compiled engines report the static form of the
            # violated check with the same provenance suffix
            assert e_trap == ("range check failed: bad-n <= 0 "
                              "(array a, upper bound) in put "
                              "(call at line 9)")

    def test_trap_without_inline_names_callee_symbols(self):
        options = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX)
        program = compile_source(TRAPPING, options)
        _, _, trap = _interp(program, {"n": 5, "bad": 9})
        assert trap == ("range check failed: j-m = 4 > 0 "
                        "(array x, upper bound)")

    def test_nested_inline_keeps_innermost_provenance(self):
        # the trap happens inside inner's clone: provenance must say
        # `inner`, not the outer frame the clone was spliced through
        options = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX,
                                   inline=True)
        program = compile_source(NESTED_TRAP, options)
        _, _, trap = _interp(program, {"n": 5, "bad": 9})
        assert trap is not None
        assert "in inner (call at line" in trap

    def test_trap_equivalence_at_call_depth(self):
        # inline on and off must agree that the program traps, on the
        # same access, in every engine
        inputs = {"n": 5, "bad": 9}
        verdicts = set()
        for inline in (False, True):
            options = OptimizerOptions(scheme=Scheme.NI,
                                       kind=CheckKind.INX, inline=inline)
            program = compile_source(NESTED_TRAP, options)
            _, _, trap = _interp(program, inputs)
            verdicts.add(trap is not None)
            for engine in ENGINES:
                _, _, e_trap = _engine(program, inputs, engine)
                verdicts.add(e_trap is not None)
        assert verdicts == {True}


class TestCacheIdentity:
    def test_backend_keys_never_collide_across_inline(self):
        """The BackendCache key is the printed IR: the inlined module
        (clone blocks, contexts, caller symbols in checks) must never
        share a compiled entry with the non-inlined one."""
        for program_def in cross_call_programs():
            keys = {}
            for inline in (False, True):
                options = OptimizerOptions(scheme=Scheme.NI,
                                           kind=CheckKind.INX,
                                           inline=inline)
                program = compile_source(program_def.source, options)
                keys[inline] = BackendCache.key(program.module)
            assert keys[False] != keys[True], program_def.name

    def test_frontend_cache_separates_inline_variants(self):
        cache = FrontendCache()
        program_def = cross_call_programs()[0]
        plain = cache.frontend(program_def.source, inline=False)
        inlined = cache.frontend(program_def.source, inline=True)
        # distinct artifacts, and each variant is its own hit
        assert plain is not inlined
        plain_sizes = sorted(sum(1 for _ in f.instructions())
                             for f in plain)
        inlined_sizes = sorted(sum(1 for _ in f.instructions())
                               for f in inlined)
        assert plain_sizes != inlined_sizes
        again = cache.frontend(program_def.source, inline=True)
        for function, other in zip(inlined, again):
            assert function.name == other.name

    def test_labels_distinguish_inline(self):
        plain = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX)
        inlined = OptimizerOptions(scheme=Scheme.NI, kind=CheckKind.INX,
                                   inline=True)
        assert plain.label() == "INX-NI"
        assert inlined.label() == "INX-NI+inl"
