"""Tests for the measurement helpers behind Tables 1-3."""

from repro.checks import OptimizerOptions, Scheme
from repro.pipeline.stats import (measure_baseline, measure_scheme,
                                  verify_same_output)


SOURCE = """
program meas
  input integer :: n = 10
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""


class TestBaseline:
    def test_fields_populated(self):
        row = measure_baseline("meas", SOURCE, {"n": 10})
        assert row.lines > 5
        assert row.subroutines == 0
        assert row.loops == 1
        assert row.static_checks > 0
        # 2 checks x 10 iterations + 2 compile-time checks for a(1)
        assert row.dynamic_checks == 22
        assert row.dynamic_instructions > 0

    def test_ratios(self):
        row = measure_baseline("meas", SOURCE, {"n": 10})
        assert 0 < row.dynamic_ratio < 200
        assert 0 < row.static_ratio < 200

    def test_inputs_scale_dynamic_counts(self):
        small = measure_baseline("meas", SOURCE, {"n": 5})
        large = measure_baseline("meas", SOURCE, {"n": 20})
        assert large.dynamic_checks > small.dynamic_checks
        assert large.static_checks == small.static_checks


class TestSchemeMeasurement:
    def test_percent_eliminated(self):
        baseline = measure_baseline("meas", SOURCE, {"n": 10})
        cell = measure_scheme("meas", SOURCE,
                              OptimizerOptions(scheme=Scheme.LLS),
                              baseline.dynamic_checks, {"n": 10})
        assert cell.percent_eliminated > 80.0
        assert cell.dynamic_checks < baseline.dynamic_checks

    def test_times_recorded(self):
        baseline = measure_baseline("meas", SOURCE, {"n": 10})
        cell = measure_scheme("meas", SOURCE, OptimizerOptions(),
                              baseline.dynamic_checks, {"n": 10})
        assert cell.optimize_seconds > 0
        assert cell.compile_seconds >= cell.optimize_seconds

    def test_label(self):
        baseline = measure_baseline("meas", SOURCE, {"n": 10})
        cell = measure_scheme("meas", SOURCE,
                              OptimizerOptions(scheme=Scheme.NI),
                              baseline.dynamic_checks, {"n": 10})
        assert cell.label == "PRX-NI"

    def test_zero_baseline_guard(self):
        from repro.pipeline.stats import SchemeMeasurement
        cell = SchemeMeasurement("x", "PRX-NI")
        assert cell.percent_eliminated == 0.0


class TestOutputVerification:
    def test_same_output(self):
        for scheme in (Scheme.NI, Scheme.LLS, Scheme.ALL):
            assert verify_same_output(SOURCE,
                                      OptimizerOptions(scheme=scheme),
                                      {"n": 10})
