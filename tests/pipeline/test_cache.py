"""Tests for the frontend compilation cache."""

from repro.checks.config import OptimizerOptions, Scheme
from repro.checks.optimizer import optimize_module
from repro.interp.machine import Machine
from repro.pipeline import (FrontendCache, PipelineTrace, compile_source,
                            reset_shared_cache, shared_cache)


def run_checks(module, inputs):
    machine = Machine(module, inputs)
    machine.run()
    return machine.counters.checks


class TestFrontendCache:
    def test_compiles_once_for_same_source(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program)
        cache.frontend(loop_program)
        cache.frontend(loop_program)
        assert cache.frontend_compiles == 1
        assert cache.hits == 2
        assert cache.misses == 1

    def test_distinct_options_are_distinct_entries(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program, insert_checks=True)
        cache.frontend(loop_program, insert_checks=False)
        cache.frontend(loop_program, rotate_loops=True)
        assert cache.frontend_compiles == 3

    def test_clones_are_isolated(self, loop_program):
        cache = FrontendCache()
        first = cache.frontend(loop_program)
        second = cache.frontend(loop_program)
        naive = run_checks(second, {"n": 10})
        optimize_module(first, OptimizerOptions(scheme=Scheme.LLS))
        # optimizing one copy must not leak into the other two
        assert run_checks(first, {"n": 10}) < naive
        third = cache.frontend(loop_program)
        assert run_checks(third, {"n": 10}) == naive

    def test_cached_results_match_fresh_compile(self, loop_program):
        cache = FrontendCache()
        options = OptimizerOptions(scheme=Scheme.LLS)
        fresh = compile_source(loop_program, options)
        cache.frontend(loop_program)  # prime
        cached = compile_source(loop_program, options, cache=cache)
        m1 = fresh.run({"n": 10})
        m2 = cached.run({"n": 10})
        assert m1.output == m2.output
        assert m1.counters.checks == m2.counters.checks
        assert m1.counters.instructions == m2.counters.instructions

    def test_trace_marks_cached_frontend(self, loop_program):
        cache = FrontendCache()
        first = PipelineTrace()
        cache.frontend(loop_program, trace=first)
        assert first.run_count("parse") == 1
        assert not first.frontend_was_cached()
        second = PipelineTrace()
        cache.frontend(loop_program, trace=second)
        assert second.run_count("parse") == 0
        assert second.frontend_was_cached()
        assert second.run_count("clone") == 1

    def test_clear_drops_memory(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program)
        cache.clear()
        cache.frontend(loop_program)
        assert cache.frontend_compiles == 2

    def test_stats_snapshot(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program)
        stats = cache.stats()
        assert stats["frontend_compiles"] == 1
        assert stats["entries"] == 1


class TestDiskCache:
    def test_second_cache_hits_disk(self, loop_program, tmp_path):
        disk = str(tmp_path)
        one = FrontendCache(disk_dir=disk)
        one.frontend(loop_program)
        assert one.frontend_compiles == 1

        two = FrontendCache(disk_dir=disk)
        module = two.frontend(loop_program)
        assert two.frontend_compiles == 0
        assert two.disk_hits == 1
        assert run_checks(module, {"n": 10}) > 0

    def test_corrupt_entry_recompiles(self, loop_program, tmp_path):
        disk = str(tmp_path)
        one = FrontendCache(disk_dir=disk)
        one.frontend(loop_program)
        for path in tmp_path.iterdir():
            path.write_bytes(b"not a pickle")
        two = FrontendCache(disk_dir=disk)
        two.frontend(loop_program)
        assert two.frontend_compiles == 1

    def test_cross_process_entry_matches_fresh_compile(self, loop_program,
                                                       tmp_path):
        """Entries written by a process with a different string-hash
        seed must optimize identically to a fresh compile (cached
        ``_hash`` slots used to leak stale seed-dependent hashes)."""
        import os
        import subprocess
        import sys

        disk = str(tmp_path)
        env = dict(os.environ, PYTHONHASHSEED="12345",
                   PYTHONPATH=os.pathsep.join(sys.path))
        script = (
            "from repro.pipeline import FrontendCache\n"
            "FrontendCache(disk_dir=%r).frontend(%r)\n"
            % (disk, loop_program))
        subprocess.run([sys.executable, "-c", script], check=True, env=env)

        cache = FrontendCache(disk_dir=disk)
        options = OptimizerOptions(scheme=Scheme.LLS)
        cached = compile_source(loop_program, options, cache=cache)
        assert cache.disk_hits == 1
        fresh = compile_source(loop_program, options)
        m1 = cached.run({"n": 10})
        m2 = fresh.run({"n": 10})
        assert m1.counters.checks == m2.counters.checks
        assert m1.counters.instructions == m2.counters.instructions
        assert m1.output == m2.output

    def test_no_disk_dir_never_writes(self, loop_program, tmp_path,
                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = FrontendCache()
        cache.frontend(loop_program)
        assert list(tmp_path.iterdir()) == []


class TestSharedCache:
    def test_shared_cache_is_a_singleton(self):
        reset_shared_cache()
        try:
            assert shared_cache() is shared_cache()
        finally:
            reset_shared_cache()

    def test_env_var_enables_disk_layer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_shared_cache()
        try:
            assert shared_cache().disk_dir == str(tmp_path)
        finally:
            reset_shared_cache()


class TestLRUBound:
    SOURCES = [
        "program p%d\n  integer :: x\n  x = %d\n  print x\nend program\n"
        % (i, i) for i in range(3)
    ]

    def test_unbounded_by_default(self, loop_program):
        cache = FrontendCache()
        assert cache.max_entries is None

    def test_evicts_least_recently_used(self):
        a, b, c = self.SOURCES
        cache = FrontendCache(max_entries=2)
        cache.frontend(a)
        cache.frontend(b)
        cache.frontend(a)  # refresh a: b is now the LRU entry
        cache.frontend(c)  # evicts b
        assert cache.evictions == 1
        assert cache.stats_object().entries == 2
        compiles = cache.frontend_compiles
        cache.frontend(a)  # still resident
        assert cache.frontend_compiles == compiles
        cache.frontend(b)  # evicted -> recompiles
        assert cache.frontend_compiles == compiles + 1

    def test_nonpositive_bound_means_unbounded(self):
        assert FrontendCache(max_entries=0).max_entries is None
        assert FrontendCache(max_entries=-3).max_entries is None

    def test_env_var_bounds_shared_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        reset_shared_cache()
        try:
            assert shared_cache().max_entries == 7
        finally:
            reset_shared_cache()


class TestCacheStats:
    def test_stats_object_fields(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program)
        cache.frontend(loop_program)
        stats = cache.stats_object()
        assert stats.frontend_compiles == 1
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.requests == 2
        assert stats.hit_rate == 0.5
        assert stats.entries == 1
        assert stats.evictions == 0

    def test_stats_dict_matches_object(self, loop_program):
        cache = FrontendCache()
        cache.frontend(loop_program)
        assert cache.stats() == cache.stats_object().as_dict()
        assert set(cache.stats()) == {"frontend_compiles", "hits",
                                      "misses", "disk_hits", "evictions",
                                      "entries"}

    def test_empty_cache_hit_rate_is_zero(self):
        from repro.pipeline import CacheStats

        assert CacheStats().hit_rate == 0.0
        assert CacheStats().requests == 0

    def test_equality(self):
        from repro.pipeline import CacheStats

        assert CacheStats(hits=1) == CacheStats(hits=1)
        assert CacheStats(hits=1) != CacheStats(hits=2)


class TestConcurrentDiskWriters:
    def test_racing_writers_never_corrupt(self, loop_program, tmp_path):
        """Many caches hammering one disk directory: every reader gets
        a working module, and no temp files are left behind."""
        import threading

        disk = str(tmp_path)
        errors = []

        def worker():
            try:
                cache = FrontendCache(disk_dir=disk)
                for _ in range(5):
                    module = cache.frontend(loop_program)
                    assert run_checks(module, {"n": 5}) > 0
                    cache.clear()  # force the disk path on every lap
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []
        entries = [p for p in tmp_path.iterdir()
                   if not p.name.endswith(".lock")]
        assert len(entries) == 1  # one key -> one published entry

    def test_truncated_entry_is_a_miss(self, loop_program, tmp_path):
        disk = str(tmp_path)
        one = FrontendCache(disk_dir=disk)
        one.frontend(loop_program)
        (entry,) = [p for p in tmp_path.iterdir()
                   if not p.name.endswith(".lock")]
        blob = entry.read_bytes()
        entry.write_bytes(blob[:len(blob) // 2])
        two = FrontendCache(disk_dir=disk)
        module = two.frontend(loop_program)
        assert two.disk_hits == 0
        assert two.frontend_compiles == 1
        assert run_checks(module, {"n": 10}) > 0

    def test_empty_entry_is_a_miss(self, loop_program, tmp_path):
        disk = str(tmp_path)
        one = FrontendCache(disk_dir=disk)
        one.frontend(loop_program)
        (entry,) = [p for p in tmp_path.iterdir()
                   if not p.name.endswith(".lock")]
        entry.write_bytes(b"")
        two = FrontendCache(disk_dir=disk)
        two.frontend(loop_program)
        assert two.frontend_compiles == 1

    def test_wrong_object_type_is_a_miss(self, loop_program, tmp_path):
        import pickle

        disk = str(tmp_path)
        one = FrontendCache(disk_dir=disk)
        one.frontend(loop_program)
        (entry,) = [p for p in tmp_path.iterdir()
                   if not p.name.endswith(".lock")]
        entry.write_bytes(pickle.dumps({"not": "a module"}))
        two = FrontendCache(disk_dir=disk)
        two.frontend(loop_program)
        assert two.disk_hits == 0
        assert two.frontend_compiles == 1
