"""Edge-profile artifacts: determinism, engine parity, validation.

The profile is the ``Scheme.LO`` training artifact, so its guarantees
are load-bearing: byte-identical serialization (cacheable, diffable),
identical edge counts from all three execution engines (training under
any engine yields the same placement), and loud failures on any torn,
stale, or foreign artifact (a silently-wrong profile would mean
silently-wrong check placement).
"""

import json

import pytest

from repro.checks.config import OptimizerOptions, Scheme
from repro.errors import ProfileError, RangeTrap
from repro.interp.machine import Machine
from repro.pipeline.driver import compile_source
from repro.pipeline.profile import (EdgeProfile, profile_from_counters,
                                    source_digest, train_profile)

LOOP = """
program p
  input integer :: n = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""

#: Same shape but the final access traps once ``n`` exceeds the bound.
TRAPPING = LOOP.replace("print a(1)", "print a(n)")


def _trained(inputs=None):
    return train_profile(LOOP, OptimizerOptions(scheme=Scheme.LO),
                         inputs or {"n": 5})


class TestDeterminism:
    def test_retraining_is_byte_identical(self):
        first, second = _trained(), _trained()
        assert first.dumps() == second.dumps()
        assert first.fingerprint == second.fingerprint

    def test_write_publishes_exactly_dumps(self, tmp_path):
        profile = _trained()
        path = tmp_path / "edges.json"
        profile.write(str(path))
        assert path.read_text() == profile.dumps()
        # no temp files left behind by the atomic-rename protocol
        assert [p.name for p in tmp_path.iterdir()] == ["edges.json"]

    def test_roundtrip_preserves_weights(self):
        profile = _trained()
        back = EdgeProfile.loads(profile.dumps())
        assert back.fingerprint == profile.fingerprint
        assert back.functions == profile.functions
        assert back.total_weight() == profile.total_weight()

    def test_trap_truncated_training_still_yields_artifact(self):
        profile = train_profile(TRAPPING,
                                OptimizerOptions(scheme=Scheme.LO),
                                {"n": 60})
        # the trap fires before the loop body is reached (the LLS
        # preheader check), so only the entry pseudo-edge is recorded
        assert profile.total_weight() == 1
        EdgeProfile.loads(profile.dumps())  # still a valid artifact


class TestEngineParity:
    """All three engines must report the same edge counts — otherwise
    training under one engine and executing under another would give
    different placements."""

    def _edges(self, program, engine, inputs):
        try:
            if engine == "interp":
                result = program.run(inputs, collect_edges=True)
            else:
                result = program.run_compiled(inputs, engine=engine,
                                              collect_edges=True)
            return dict(result.counters.edges)
        except RangeTrap as trap:
            # accounting survives the trap on every engine: the trap
            # carries the runtime state at the instant it fired
            return dict(trap.runtime.counters.edges)

    @pytest.mark.parametrize("source,inputs", [
        (LOOP, {"n": 5}),       # the common case
        (LOOP, {"n": 0}),       # zero-trip loop: exit edge only
        (TRAPPING, {"n": 60}),  # trap mid-run: partial counts
    ], ids=["normal", "zero-trip", "trapping"])
    def test_three_engines_agree(self, source, inputs):
        program = compile_source(source,
                                 OptimizerOptions(scheme=Scheme.LLS))
        interp = self._edges(program, "interp", inputs)
        compiled = self._edges(program, "compiled", inputs)
        specialized = self._edges(program, "specialized", inputs)
        assert interp == compiled == specialized
        assert interp  # at least the entry pseudo-edge

    def test_zero_trip_records_exit_not_body(self):
        program = compile_source(LOOP,
                                 OptimizerOptions(scheme=Scheme.LLS))
        edges = self._edges(program, "interp", {"n": 0})
        bodies = [e for e in edges if "do_body" in e[2]]
        assert not bodies
        exits = [e for e in edges if "do_exit" in e[2]]
        assert exits and all(edges[e] == 1 for e in exits)

    def test_artifact_identical_across_engines(self):
        texts = []
        for engine in ("interp", "compiled", "specialized"):
            program = compile_source(LOOP,
                                     OptimizerOptions(scheme=Scheme.LLS))
            if engine == "interp":
                result = program.run({"n": 5}, collect_edges=True)
            else:
                result = program.run_compiled({"n": 5}, engine=engine,
                                              collect_edges=True)
            texts.append(profile_from_counters(
                LOOP, result.counters).dumps())
        assert texts[0] == texts[1] == texts[2]

    def test_default_run_collects_nothing(self):
        # collect_edges is opt-in; the default path must not pay for it
        program = compile_source(LOOP,
                                 OptimizerOptions(scheme=Scheme.LLS))
        assert program.run({"n": 5}).counters.edges is None


class TestValidation:
    def test_not_json_is_profile_error(self):
        with pytest.raises(ProfileError, match="not valid JSON"):
            EdgeProfile.loads("{torn", where="x.json")

    def test_wrong_schema_is_profile_error(self):
        with pytest.raises(ProfileError, match="schema"):
            EdgeProfile.loads('{"schema": "something.else"}')

    def test_tampered_artifact_is_profile_error(self):
        doc = json.loads(_trained().dumps())
        fn = next(iter(doc["functions"]))
        key = next(iter(doc["functions"][fn]))
        doc["functions"][fn][key] += 1  # edit a count, keep fingerprint
        with pytest.raises(ProfileError, match="fingerprint mismatch"):
            EdgeProfile.loads(json.dumps(doc))

    def test_negative_count_is_profile_error(self):
        doc = json.loads(_trained().dumps())
        fn = next(iter(doc["functions"]))
        key = next(iter(doc["functions"][fn]))
        doc["functions"][fn][key] = -1
        with pytest.raises(ProfileError, match="malformed edge"):
            EdgeProfile.loads(json.dumps(doc))

    def test_missing_file_is_profile_error(self):
        with pytest.raises(ProfileError, match="cannot read"):
            EdgeProfile.load("/nonexistent/edges.json")

    def test_foreign_source_is_rejected(self):
        profile = _trained()
        with pytest.raises(ProfileError, match="different program"):
            profile.validate_for(TRAPPING, profile.kind,
                                 profile.implication)

    def test_axis_mismatch_is_rejected(self):
        profile = _trained()  # trained under PRX/all
        with pytest.raises(ProfileError, match="trained under"):
            profile.validate_for(LOOP, "INX", profile.implication)

    def test_compile_rejects_stale_profile(self):
        profile = _trained()
        with pytest.raises(ProfileError):
            compile_source(TRAPPING, OptimizerOptions(
                Scheme.LO, profile=profile))

    def test_counters_without_edges_is_profile_error(self):
        program = compile_source(LOOP,
                                 OptimizerOptions(scheme=Scheme.LLS))
        machine = Machine(program.module, {"n": 5})
        machine.run()
        with pytest.raises(ProfileError, match="did not collect"):
            profile_from_counters(LOOP, machine.counters)
