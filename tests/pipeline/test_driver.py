"""Tests for the end-to-end pipeline driver."""

import pytest

from repro import (CheckKind, OptimizerOptions, RangeTrap, Scheme,
                   compile_source)


class TestCompileSource:
    def test_default_pipeline(self, loop_program):
        program = compile_source(loop_program)
        machine = program.run({"n": 5})
        assert machine.output

    def test_no_checks_variant(self, loop_program):
        program = compile_source(loop_program, insert_checks=False)
        machine = program.run({"n": 5})
        assert machine.counters.checks == 0

    def test_unoptimized_variant(self, loop_program):
        naive = compile_source(loop_program, optimize=False)
        optimized = compile_source(loop_program)
        m1 = naive.run({"n": 5})
        m2 = optimized.run({"n": 5})
        assert m2.counters.checks < m1.counters.checks
        assert m1.output == m2.output

    def test_non_ssa_variant(self, loop_program):
        program = compile_source(loop_program, ssa=False, optimize=False)
        machine = program.run({"n": 5})
        assert machine.counters.phis == 0

    def test_stats_exposed(self, loop_program):
        program = compile_source(loop_program,
                                 OptimizerOptions(scheme=Scheme.LLS))
        total = program.total_stats()
        assert total.checks_before > total.checks_after

    def test_trap_propagates(self):
        program = compile_source("""
program p
  input integer :: i = 11
  real :: a(10)
  a(i) = 1.0
end program
""")
        with pytest.raises(RangeTrap):
            program.run({"i": 11})

    def test_each_scheme_runs(self, loop_program):
        for scheme in Scheme:
            program = compile_source(loop_program,
                                     OptimizerOptions(scheme=scheme))
            machine = program.run({"n": 4})
            assert machine.output

    def test_inx_kind_runs(self, loop_program):
        program = compile_source(
            loop_program,
            OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX))
        machine = program.run({"n": 4})
        assert machine.output


class TestEngineCallOrder:
    """``run_compiled`` must not mutate the shared module (it used to
    destruct SSA in place, corrupting later ``run()`` counts)."""

    def test_run_counts_unaffected_by_run_compiled(self, loop_program):
        pristine = compile_source(loop_program)
        expected = pristine.run({"n": 8})

        program = compile_source(loop_program)
        program.run_compiled({"n": 8})
        machine = program.run({"n": 8})

        assert machine.output == expected.output
        assert machine.counters.instructions == \
            expected.counters.instructions
        assert machine.counters.checks == expected.counters.checks
        assert machine.counters.phis == expected.counters.phis

    def test_module_still_has_phis_after_run_compiled(self, loop_program):
        program = compile_source(loop_program)
        program.run_compiled({"n": 8})
        assert any(block.phis()
                   for function in program.module
                   for block in function.blocks)

    def test_interleaved_runs_are_stable(self, loop_program):
        program = compile_source(loop_program)
        first = program.run({"n": 8})
        backend = program.run_compiled({"n": 8})
        second = program.run({"n": 8})
        assert first.counters.instructions == second.counters.instructions
        assert first.counters.checks == second.counters.checks \
            == backend.counters.checks


class TestValueNumberingOption:
    INDIRECT = """
program p
  input integer :: i = 2, j = 3, c = 1
  real :: a(100), b(100)
  a(i * j) = 1.0
  if (c > 0) then
    b(i * j) = 2.0
  end if
  print a(6)
end program
"""

    def test_gvn_improves_check_elimination(self):
        plain = compile_source(self.INDIRECT,
                               OptimizerOptions(scheme=Scheme.NI))
        gvn = compile_source(self.INDIRECT,
                             OptimizerOptions(scheme=Scheme.NI),
                             value_number=True)
        m_plain = plain.run()
        m_gvn = gvn.run()
        assert m_gvn.output == m_plain.output
        assert m_gvn.counters.checks < m_plain.counters.checks
