"""Integration tests for the HTTP compile service.

Servers bind port 0 (ephemeral) and use thread/inline worker modes so
the suite stays fast; the CI smoke job exercises the process mode
end-to-end.
"""

import os
import threading
import time

import pytest

from repro.service import ServiceClient, WorkerPool

from ..conftest import make_service

GOOD = """
program demo
  input integer :: n = 20
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""


@pytest.fixture
def service():
    svc = make_service()
    yield svc
    if not svc._stopped.is_set():
        svc.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["in_flight"] == 0
        assert health["worker_mode"] == "thread"

    def test_healthz_identity_fields(self, client):
        # the cluster supervisor and its hashing client key on these
        health = client.healthz()
        assert health["shard_id"] is None  # standalone service
        assert health["pid"] == os.getpid()
        assert isinstance(health["uptime_s"], float)
        assert health["uptime_s"] >= 0.0
        assert health["uptime_s"] == health["uptime_seconds"]

    def test_healthz_reports_shard_id(self):
        svc = make_service(shard_id=3)
        try:
            health = ServiceClient(svc.url, timeout=30.0).healthz()
            assert health["shard_id"] == 3
        finally:
            svc.shutdown()

    def test_version(self, client):
        import repro

        status, doc = client.get_json("/version")
        assert status == 200
        assert doc["version"] == repro.__version__

    def test_unknown_endpoint_404(self, client):
        status, doc = client.get_json("/nope")
        assert status == 404
        status, doc = client.post_json("/nope", {})
        assert status == 404

    def test_compile_run(self, client):
        status, doc = client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 10}})
        assert status == 200
        assert doc["ok"] is True
        assert doc["output"] == [10.0]

    def test_compile_trap(self, client):
        status, doc = client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 60}})
        assert status == 200
        assert doc["ok"] is False
        assert "range check failed" in doc["trap"]

    def test_malformed_json_400(self, client):
        status, body = client._request("POST", "/compile")
        assert status == 400

    def test_malformed_source_422(self, client):
        status, doc = client.post_json("/compile", {
            "action": "run",
            "source": "program broken\n  if then\nend program"})
        assert status == 422
        assert doc["schema"] == "repro.service.error.v1"

    def test_bad_request_400(self, client):
        status, doc = client.post_json("/compile", {"action": "pwn"})
        assert status == 400

    def test_metrics_exposition(self, client):
        client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 5}})
        values = client.metrics_values()
        key = 'repro_requests_total{endpoint="/compile",status="200"}'
        assert values.get(key, 0) >= 1
        assert 'repro_queue_depth' in values
        hits = values.get('repro_cache_requests_total{result="hit"}', 0)
        misses = values.get('repro_cache_requests_total{result="miss"}', 0)
        assert hits + misses >= 1

    def test_execute_histogram_labeled_by_engine(self, client):
        client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 5}})
        client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 5},
            "engine": "compiled"})
        values = client.metrics_values()
        for engine in ("interp", "compiled"):
            key = 'repro_execute_seconds_count{engine="%s"}' % engine
            assert values.get(key, 0) >= 1, key

    def test_cache_hit_on_repeat(self, client):
        payload = {"action": "run", "source": GOOD, "inputs": {"n": 7}}
        client.post_json("/compile", payload)
        # different inputs -> different request, same source -> cache hit
        client.post_json("/compile", dict(payload, inputs={"n": 8}))
        values = client.metrics_values()
        assert values.get(
            'repro_cache_requests_total{result="hit"}', 0) >= 1


class TestTablesEndpoint:
    def test_tables_matches_cli_bytes(self, tmp_path):
        """The acceptance criterion: a service tables response is
        byte-identical to `repro tables` CLI stdout."""
        import contextlib
        import io

        from repro.benchsuite import all_programs
        import repro.benchsuite.parallel as parallel

        # restrict the suite to two programs to keep the test quick;
        # both sides go through the same run_suite + renderer
        subset = all_programs()[:2]
        service = make_service(worker_mode="inline")
        try:
            client = ServiceClient(service.url, timeout=120.0)
            original = parallel.run_suite

            def small_suite(programs=None, small=False, jobs=1,
                            engine="interp", profile_mode="auto"):
                return original(subset, small=small, jobs=1, engine=engine,
                                profile_mode=profile_mode)

            import unittest.mock as mock

            with mock.patch.object(parallel, "run_suite", small_suite), \
                    mock.patch("repro.benchsuite.run_suite", small_suite):
                status, doc = client.post_json("/tables", {"small": True})
                assert status == 200

                from repro.cli import main

                buffer = io.StringIO()
                with contextlib.redirect_stdout(buffer), \
                        contextlib.redirect_stderr(io.StringIO()):
                    assert main(["tables", "--small"]) == 0
                assert doc["text"] == buffer.getvalue()
                assert doc["tables"]["schema"] == "repro.tables.v1"
        finally:
            service.shutdown()


class TestBackpressure:
    def test_queue_full_returns_429(self):
        release = threading.Event()

        def slow_task(payload):
            release.wait(timeout=10.0)
            return 200, {"ok": True}

        pool = WorkerPool(workers=1, mode="thread", task=slow_task)
        service = make_service(pool=pool, queue_limit=1,
                               request_timeout=10.0)
        try:
            client = ServiceClient(service.url, timeout=30.0)
            results = []

            def fire(n):
                status, _ = client.post_json("/compile", {
                    "action": "run", "source": GOOD,
                    "inputs": {"n": n}})
                results.append(status)

            first = threading.Thread(target=fire, args=(1,))
            first.start()
            deadline = time.time() + 5.0
            while service.health()["in_flight"] == 0 \
                    and time.time() < deadline:
                time.sleep(0.01)
            status, doc = client.post_json("/compile", {
                "action": "run", "source": GOOD, "inputs": {"n": 2}})
            assert status == 429
            assert "queue full" in doc["error"]
            release.set()
            first.join(timeout=10.0)
            assert results == [200]
            values = client.metrics_values()
            key = 'repro_requests_rejected_total{reason="queue_full"}'
            assert values.get(key) == 1
        finally:
            release.set()
            service.shutdown()

    def test_timeout_returns_504(self):
        def sleepy_task(payload):
            time.sleep(1.0)
            return 200, {"ok": True}

        pool = WorkerPool(workers=1, mode="thread", task=sleepy_task)
        service = make_service(pool=pool, request_timeout=0.05)
        try:
            client = ServiceClient(service.url, timeout=30.0)
            status, doc = client.post_json("/compile", {
                "action": "run", "source": GOOD})
            assert status == 504
            assert "deadline" in doc["error"]
            values = client.metrics_values()
            assert values.get("repro_request_timeouts_total") == 1
        finally:
            service.shutdown()


class TestSingleFlight:
    def test_identical_requests_coalesce(self):
        calls = []
        gate = threading.Event()

        def slow_task(payload):
            calls.append(1)
            gate.wait(timeout=10.0)
            return 200, {"ok": True, "frontend_cached": False,
                         "phases": None}

        pool = WorkerPool(workers=4, mode="thread", task=slow_task)
        service = make_service(pool=pool, queue_limit=8)
        try:
            client = ServiceClient(service.url, timeout=30.0)
            payload = {"action": "run", "source": GOOD,
                       "inputs": {"n": 9}}
            statuses = []

            def fire():
                status, _ = client.post_json("/compile", payload)
                statuses.append(status)

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            deadline = time.time() + 5.0
            while service.health()["in_flight"] < 3 \
                    and time.time() < deadline:
                time.sleep(0.01)
            gate.set()
            for thread in threads:
                thread.join(timeout=10.0)
            assert statuses == [200, 200, 200]
            assert sum(calls) == 1  # one worker execution for three
            values = client.metrics_values()
            assert values.get(
                "repro_singleflight_coalesced_total", 0) == 2
        finally:
            gate.set()
            service.shutdown()


class TestGracefulShutdown:
    def test_shutdown_endpoint_drains(self):
        started = threading.Event()
        release = threading.Event()

        def slow_task(payload):
            started.set()
            release.wait(timeout=10.0)
            return 200, {"ok": True}

        pool = WorkerPool(workers=1, mode="thread", task=slow_task)
        service = make_service(pool=pool, drain_timeout=10.0)
        client = ServiceClient(service.url, timeout=30.0)
        results = []

        def fire():
            status, _ = client.post_json("/compile", {
                "action": "run", "source": GOOD})
            results.append(status)

        inflight = threading.Thread(target=fire)
        inflight.start()
        assert started.wait(timeout=5.0)
        assert client.shutdown() == 202
        # draining: new work refused with 503
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                status, _ = client.post_json("/compile", {
                    "action": "run", "source": GOOD})
            except OSError:
                break  # already fully stopped
            if status == 503:
                break
            time.sleep(0.05)
        release.set()
        inflight.join(timeout=10.0)
        assert results == [200]  # in-flight work completed, not dropped
        assert service.wait_stopped(timeout=10.0)

    def test_programmatic_shutdown_idempotent(self):
        service = make_service(worker_mode="inline")
        service.shutdown()
        service.shutdown()
        assert service.wait_stopped(timeout=1.0)

    def test_drain_deadline_follows_injected_monotonic_clock(self):
        # the drain deadline must come off the injectable monotonic
        # clock: while that clock stands still the drain keeps waiting
        # (no wall-clock source can cut it short), and a jump past the
        # deadline ends it promptly even though almost no wall time
        # has passed
        clock_value = [500.0]
        service = make_service(worker_mode="inline", drain_timeout=300.0,
                               clock=lambda: clock_value[0])
        with service._inflight_lock:
            service._inflight = 1  # simulate a stuck in-flight request
        done = threading.Event()

        def drain():
            service.shutdown()
            done.set()

        threading.Thread(target=drain, daemon=True).start()
        assert not done.wait(timeout=0.3)  # deadline not reached yet
        clock_value[0] += 301.0  # jump past the 300s drain deadline
        with service._idle:
            service._idle.notify_all()
        assert done.wait(timeout=10.0)
        assert service.wait_stopped(timeout=10.0)

    def test_uptime_follows_injected_monotonic_clock(self):
        clock_value = [100.0]
        service = make_service(worker_mode="inline",
                               clock=lambda: clock_value[0])
        try:
            clock_value[0] += 42.0
            health = service.health()
            assert health["uptime_seconds"] == pytest.approx(42.0)
            # the wall timestamp is reporting-only and stays a real
            # unix time regardless of the injected duration clock
            assert health["started_unix"] <= time.time()
        finally:
            service.shutdown()


class TestRealWorkerPoolModes:
    def test_inline_mode_round_trip(self):
        service = make_service(worker_mode="inline")
        try:
            client = ServiceClient(service.url, timeout=30.0)
            status, doc = client.post_json("/compile", {
                "action": "run", "source": GOOD, "inputs": {"n": 3}})
            assert status == 200
            assert doc["output"] == [3.0]
        finally:
            service.shutdown()

    def test_worker_pool_submit_coalesces_by_key(self):
        gate = threading.Event()
        calls = []

        def task(payload):
            calls.append(1)
            gate.wait(timeout=5.0)
            return 200, {}

        pool = WorkerPool(workers=2, mode="thread", task=task)
        try:
            first = pool.submit({"a": 1}, key="k")
            second = pool.submit({"a": 1}, key="k")
            assert first is second
            assert pool.coalesced == 1
            gate.set()
            assert first.result(timeout=5.0) == (200, {})
            deadline = time.time() + 5.0
            while pool.inflight and time.time() < deadline:
                time.sleep(0.01)
            third = pool.submit({"a": 1}, key="k")
            assert third is not first  # finished -> new flight
        finally:
            gate.set()
            pool.shutdown()

    def test_worker_pool_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            WorkerPool(mode="quantum")

    def test_worker_pool_shutdown_rejects_submit(self):
        pool = WorkerPool(workers=1, mode="inline")
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit({})
