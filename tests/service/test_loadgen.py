"""Tests for workload construction and the load generator."""

import json

import pytest

from repro.service import run_loadgen
from repro.service.client import (MALFORMED_SOURCE, TRAP_SOURCE,
                                  build_workload)

from ..conftest import make_service

GOOD = """\
program corpusdemo
  integer :: i
  real :: a(10)
  do i = 1, 10
    a(i) = real(i)
  end do
  print a(10)
end program
"""


class TestBuildWorkload:
    def test_exact_count_and_sequence(self):
        workload = build_workload(17)
        assert len(workload) == 17
        assert [r["sequence"] for r in workload] == list(range(17))

    def test_deterministic(self):
        assert build_workload(10) == build_workload(10)

    def test_includes_trap_and_malformed(self):
        base = build_workload(200)
        sources = {r["source"] for r in base}
        assert TRAP_SOURCE in sources
        assert MALFORMED_SOURCE in sources

    def test_opt_out_of_failure_salt(self):
        base = build_workload(200, include_trap=False,
                              include_malformed=False)
        sources = {r["source"] for r in base}
        assert TRAP_SOURCE not in sources
        assert MALFORMED_SOURCE not in sources

    def test_corpus_entries_included(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "entry.f").write_text("! fuzz-corpus entry\n" + GOOD)
        workload = build_workload(200, corpus_dir=str(corpus))
        tags = {r["tag"] for r in workload}
        assert "corpus:entry.f" in tags

    def test_tiles_round_robin(self):
        from repro.benchsuite.registry import all_programs

        period = len(all_programs()) + 2  # + trap + malformed
        workload = build_workload(2 * period)
        for i in range(period):
            lhs = {k: v for k, v in workload[i].items()
                   if k != "sequence"}
            rhs = {k: v for k, v in workload[i + period].items()
                   if k != "sequence"}
            assert lhs == rhs


class TestRunLoadgen:
    @pytest.fixture
    def service(self):
        svc = make_service()
        yield svc
        if not svc._stopped.is_set():
            svc.shutdown()

    def test_every_request_accounted(self, service, tmp_path):
        out = tmp_path / "results" / "loadgen.json"
        report = run_loadgen(service.url, requests_total=24,
                             concurrency=6, out_path=str(out))
        doc = report.as_dict()
        assert doc["schema"] == "repro.loadgen.v1"
        assert doc["requests"] == 24
        assert doc["unaccounted"] == 0
        assert sum(doc["by_status"].values()) == 24
        # the salted failures actually flow through
        assert doc["by_status"].get("422", 0) >= 1  # malformed source
        assert any(r["trapped"] for r in report.results)
        # no transport errors against a live server
        assert "transport-error" not in doc["by_status"]

    def test_artifact_written_and_valid(self, service, tmp_path):
        out = tmp_path / "loadgen.json"
        report = run_loadgen(service.url, requests_total=8,
                             concurrency=4, out_path=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == report.as_dict()
        lat = on_disk["latency_seconds"]
        assert 0.0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert on_disk["throughput_rps"] > 0

    def test_cache_counters_from_repeats(self, service):
        # tiling 3x the base mix repeats every source -> cache hits
        report = run_loadgen(service.url, requests_total=30,
                             concurrency=4, include_malformed=False)
        assert report.cache_hits + report.cache_misses > 0
        assert report.cache_hits >= 1
        assert 0.0 <= report.cache_hit_rate <= 1.0

    def test_transport_errors_are_counted_not_raised(self, tmp_path):
        # nothing listens on this port: every request must still come
        # back as an accounted transport-error row
        report = run_loadgen("http://127.0.0.1:9", requests_total=4,
                             concurrency=2, timeout=0.5)
        doc = report.as_dict()
        assert doc["by_status"] == {"transport-error": 4}
        assert doc["unaccounted"] == 0

    def test_summary_mentions_key_numbers(self, service):
        report = run_loadgen(service.url, requests_total=6, concurrency=3)
        text = report.summary()
        assert "6 requests @ 3 clients" in text
        assert "p95" in text
        assert "hit rate" in text


class TestDegenerateReports:
    """Percentile/throughput math on empty or all-failed result sets.

    A run where every request failed (or none ran at all) must still
    produce a well-formed report — no ZeroDivisionError, no
    IndexError from percentiles over an empty sample list.
    """

    def test_empty_report_renders(self):
        from repro.service import LoadgenReport

        report = LoadgenReport("http://127.0.0.1:9", 4)
        doc = report.as_dict()
        assert doc["requests"] == 0
        assert doc["completed"] == 0
        assert doc["unaccounted"] == 0
        assert doc["throughput_rps"] == 0.0
        lat = doc["latency_seconds"]
        assert lat["p50"] == lat["p95"] == lat["p99"] == 0.0
        assert lat["max"] == lat["mean"] == 0.0
        assert doc["cache"]["hit_rate"] == 0.0
        assert "0 requests" in report.summary()

    def test_all_failed_report_renders(self):
        from repro.service import LoadgenReport

        report = LoadgenReport("http://127.0.0.1:9", 2)
        report.submitted = 3
        for sequence in range(3):
            report.results.append({
                "sequence": sequence, "tag": "bench",
                "status": "transport-error", "trapped": False,
                "seconds": 0.01})
        doc = report.as_dict()
        assert doc["completed"] == 0  # zero successes, zero divides
        assert doc["by_status"] == {"transport-error": 3}
        assert doc["unaccounted"] == 0
        assert doc["latency_seconds"]["p95"] == 0.01
        report.summary()  # must not raise

    def test_unaccounted_counts_lost_rows(self):
        from repro.service import LoadgenReport

        report = LoadgenReport("http://127.0.0.1:9", 2)
        report.submitted = 5
        report.results.append({"sequence": 0, "tag": "", "status": 200,
                               "trapped": False, "seconds": 0.01})
        assert report.as_dict()["unaccounted"] == 4

    def test_non_oserror_transport_failure_is_a_row(self):
        """http.client.HTTPException is not an OSError; _fire must
        still account it instead of crashing the executor future."""
        import http.client

        from repro.service import ServiceClient
        from repro.service.client import _fire

        client = ServiceClient("http://127.0.0.1:9", timeout=1.0)

        def explode(path, payload):
            raise http.client.BadStatusLine("garbage")

        client.post = explode
        row = _fire(client, {"action": "run", "source": GOOD,
                             "sequence": 7, "tag": "bench"})
        assert row["status"] == "transport-error"
        assert row["sequence"] == 7

    def test_percentile_empty_and_singleton(self):
        from repro.service import percentile

        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0
        assert percentile([3.5], 50) == 3.5
        assert percentile([3.5], 99) == 3.5
