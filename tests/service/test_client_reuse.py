"""HTTP keep-alive in ServiceClient: reuse, reconnect, and close.

The client keeps one ``http.client`` connection per thread and replays
a request on a fresh socket exactly once when a *reused* socket turns
out to be stale (the server may close idle keep-alive connections at
any time).  A failure on a freshly-opened socket propagates — the
server is genuinely unreachable and retrying would only mask it.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service import ServiceClient

from ..conftest import ReservedPorts, make_service


class _ScriptedServer:
    """A raw HTTP/1.1 server serving ``per_connection`` responses on
    each accepted connection, then closing it server-side."""

    def __init__(self, per_connection: int = 1,
                 close_header: bool = False) -> None:
        self.per_connection = per_connection
        self.close_header = close_header
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = "http://127.0.0.1:%d" % self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                for _ in range(self.per_connection):
                    if not self._one_exchange(conn):
                        break

    def _one_exchange(self, conn: socket.socket) -> bool:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return False
            data += chunk
        head, rest = data.split(b"\r\n\r\n", 1)
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(rest) < length:
            rest += conn.recv(65536)
        body = b'{"ok": true}'
        headers = [b"HTTP/1.1 200 OK",
                   b"Content-Type: application/json",
                   b"Content-Length: " + str(len(body)).encode("ascii")]
        if self.close_header:
            headers.append(b"Connection: close")
        conn.sendall(b"\r\n".join(headers) + b"\r\n\r\n" + body)
        return True

    def stop(self) -> None:
        self._sock.close()


class TestConnectionReuse:
    def test_sequential_requests_share_one_socket(self):
        service = make_service()
        try:
            client = ServiceClient(service.url, timeout=30.0)
            client.healthz()
            first_sock = client._local.conn.sock
            assert first_sock is not None
            client.healthz()
            client.healthz()
            assert client._local.conn.sock is first_sock
            assert client.reconnects == 0
        finally:
            client.close()
            service.shutdown()

    def test_stale_keepalive_reconnects_exactly_once(self):
        server = _ScriptedServer(per_connection=1)
        try:
            client = ServiceClient(server.url, timeout=5.0)
            assert client.get_json("/x")[0] == 200
            # server closed the socket after that response; the next
            # request finds the reused socket stale and replays once
            assert client.get_json("/x")[0] == 200
            assert client.reconnects == 1
            assert server.connections == 2
        finally:
            server.stop()

    def test_connection_close_header_drops_socket(self):
        server = _ScriptedServer(per_connection=1, close_header=True)
        try:
            client = ServiceClient(server.url, timeout=5.0)
            assert client.get_json("/x")[0] == 200
            assert client.get_json("/x")[0] == 200
            # honoring Connection: close is a planned reconnect, not a
            # stale-socket replay
            assert client.reconnects == 0
            assert server.connections == 2
        finally:
            server.stop()

    def test_fresh_connection_failure_propagates(self):
        with ReservedPorts(1) as reserved:
            url = "http://127.0.0.1:%d" % reserved.ports[0]
            client = ServiceClient(url, timeout=2.0)
            with pytest.raises(OSError):
                client.get("/healthz")
            assert client.reconnects == 0

    def test_threads_get_independent_connections(self):
        service = make_service()
        try:
            client = ServiceClient(service.url, timeout=30.0)
            socks = {}

            def probe(name):
                client.healthz()
                socks[name] = client._local.conn.sock

            threads = [threading.Thread(target=probe, args=(i,))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            client.healthz()
            socks["main"] = client._local.conn.sock
            assert len(set(map(id, socks.values()))) == 3
        finally:
            client.close()
            service.shutdown()

    def test_close_forgets_the_socket(self):
        service = make_service()
        try:
            client = ServiceClient(service.url, timeout=30.0)
            client.healthz()
            client.close()
            assert getattr(client._local, "conn", None) is None
            client.healthz()  # and reconnecting afterwards still works
        finally:
            client.close()
            service.shutdown()
