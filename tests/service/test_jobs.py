"""Tests for request validation and the worker-side task."""

import pytest

from repro.service.jobs import (CompileRequest, ServiceError,
                                execute_request, request_key)

GOOD = """
program demo
  input integer :: n = 20
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""

TRAPPING = """
program demo
  input integer :: n = 60
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""


class TestValidation:
    def test_minimal_run_request(self):
        request = CompileRequest.from_payload(
            {"action": "run", "source": GOOD})
        assert request.scheme == "LLS"
        assert request.engine == "interp"

    def test_not_an_object(self):
        with pytest.raises(ServiceError) as info:
            CompileRequest.from_payload([1, 2])
        assert info.value.status == 400

    def test_unknown_action(self):
        with pytest.raises(ServiceError):
            CompileRequest.from_payload({"action": "pwn", "source": GOOD})

    def test_missing_source(self):
        with pytest.raises(ServiceError):
            CompileRequest.from_payload({"action": "run", "source": "  "})

    def test_bad_scheme(self):
        with pytest.raises(ServiceError):
            CompileRequest.from_payload(
                {"action": "run", "source": GOOD, "scheme": "WAT"})

    def test_bad_inputs(self):
        with pytest.raises(ServiceError):
            CompileRequest.from_payload(
                {"action": "run", "source": GOOD, "inputs": {"n": "x"}})
        with pytest.raises(ServiceError):
            CompileRequest.from_payload(
                {"action": "run", "source": GOOD, "inputs": {"n": True}})

    def test_bad_flag_type(self):
        with pytest.raises(ServiceError):
            CompileRequest.from_payload(
                {"action": "run", "source": GOOD, "optimize": "yes"})

    def test_oversized_source_is_413(self):
        with pytest.raises(ServiceError) as info:
            CompileRequest.from_payload(
                {"action": "run", "source": "x" * (2 << 20)})
        assert info.value.status == 413

    def test_tables_needs_no_source(self):
        request = CompileRequest.from_payload(
            {"action": "tables", "small": True})
        assert request.action == "tables"


class TestRequestKey:
    def test_deterministic(self):
        a = CompileRequest.from_payload({"action": "run", "source": GOOD})
        b = CompileRequest.from_payload({"action": "run", "source": GOOD})
        assert request_key(a) == request_key(b)

    def test_differs_by_config(self):
        a = CompileRequest.from_payload({"action": "run", "source": GOOD})
        b = CompileRequest.from_payload(
            {"action": "run", "source": GOOD, "scheme": "NI"})
        assert request_key(a) != request_key(b)

    def test_differs_by_inputs(self):
        a = CompileRequest.from_payload({"action": "run", "source": GOOD})
        b = CompileRequest.from_payload(
            {"action": "run", "source": GOOD, "inputs": {"n": 5}})
        assert request_key(a) != request_key(b)


class TestExecuteRequest:
    def test_run_success(self):
        status, body = execute_request(
            {"action": "run", "source": GOOD, "inputs": {"n": 10}})
        assert status == 200
        assert body["schema"] == "repro.run.v1"
        assert body["ok"] is True
        assert body["output"] == [10.0]
        assert body["counters"]["checks"] >= 0
        assert set(body["phases"]) == {"parse", "optimize", "execute"}

    def test_run_trap_is_still_200(self):
        status, body = execute_request(
            {"action": "run", "source": TRAPPING})
        assert status == 200
        assert body["ok"] is False
        assert "range check failed" in body["trap"]

    def test_compiled_engine(self):
        status, body = execute_request(
            {"action": "run", "source": GOOD, "engine": "compiled",
             "inputs": {"n": 10}})
        assert status == 200
        assert body["output"] == [10.0]

    def test_dump(self):
        status, body = execute_request({"action": "dump", "source": GOOD})
        assert status == 200
        assert "program demo" in body["ir"]

    def test_parse_error_is_422(self):
        status, body = execute_request(
            {"action": "run", "source": "program p\nif then\nend program"})
        assert status == 422
        assert body["schema"] == "repro.service.error.v1"
        assert body["error_type"] == "ParseError"

    def test_validation_error_is_400(self):
        status, body = execute_request({"action": "run", "source": ""})
        assert status == 400

    def test_interp_and_cli_agree(self, tmp_path):
        """The service's run response and `repro run --json` carry the
        same numbers for the same program and config."""
        import json

        from repro.cli import main

        path = tmp_path / "demo.f"
        path.write_text(GOOD)
        status, body = execute_request(
            {"action": "run", "source": GOOD, "inputs": {"n": 10}})

        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(["run", str(path), "--input", "n=10", "--json"])
        assert code == 0
        cli_doc = json.loads(buffer.getvalue())
        assert cli_doc["schema"] == body["schema"]
        assert cli_doc["output"] == body["output"]
        assert cli_doc["counters"] == body["counters"]
        assert cli_doc["optimizer"] == body["optimizer"]
        assert set(cli_doc) == set(body)


class TestStepLimitParity:
    """Both engines respect the service fuel budget (the compiled path
    used to run unbounded and hold a worker until the 504 deadline)."""

    RUNAWAY = """
program demo
  input integer :: n = 100000
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
"""

    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    def test_runaway_program_is_a_422_on_both_engines(self, engine,
                                                      monkeypatch):
        import repro.service.jobs as jobs

        monkeypatch.setattr(jobs, "MAX_STEPS", 1000)
        status, body = execute_request(
            {"action": "run", "source": self.RUNAWAY, "engine": engine})
        assert status == 422
        assert body["error_type"] == "StepLimitError"
        assert "1000 steps" in body["error"]
