"""Tests for the stdlib metrics registry."""

import threading

import pytest

from repro.service.metrics import (Counter, Gauge, Histogram,
                                   MetricsRegistry, percentile)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_sample(self):
        assert percentile([3.5], 50) == 3.5

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50) == 51
        assert percentile(samples, 0) == 1
        assert percentile(samples, 100) == 100
        assert percentile(samples, 99) == 99

    def test_unsorted_input(self):
        assert percentile([5, 1, 9, 3], 100) == 9


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labeled_children(self):
        counter = Counter("req_total", labelnames=("endpoint", "status"))
        counter.labels("/compile", 200).inc()
        counter.labels("/compile", 200).inc()
        counter.labels("/compile", 429).inc()
        assert counter.labels("/compile", "200").value == 2
        assert counter.value == 3

    def test_unlabeled_use_of_labeled_counter_rejected(self):
        counter = Counter("req_total", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_arity_rejected(self):
        counter = Counter("req_total", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            counter.labels("a", "b")

    def test_render(self):
        counter = Counter("req_total", "requests", ("status",))
        counter.labels(200).inc(3)
        text = "\n".join(counter.render())
        assert "# TYPE req_total counter" in text
        assert 'req_total{status="200"} 3' in text

    def test_thread_safety(self):
        counter = Counter("c_total")

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4


class TestHistogram:
    def test_observe_and_count(self):
        histogram = Histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(5.55)

    def test_render_buckets_are_cumulative(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        text = "\n".join(histogram.render())
        assert 'lat_bucket{le="0.1"} 2' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_percentiles_from_reservoir(self):
        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == 51.0
        assert histogram.percentile(99) == 99.0

    def test_labeled_histogram(self):
        histogram = Histogram("phase_seconds", labelnames=("phase",))
        histogram.labels("parse").observe(0.1)
        histogram.labels("execute").observe(0.2)
        text = "\n".join(histogram.render())
        assert 'phase_seconds_bucket{phase="parse",le="+Inf"} 1' in text
        assert 'phase_seconds_count{phase="execute"} 1' in text


class TestRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        second = registry.counter("a_total")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError):
            registry.gauge("a_total")

    def test_render_everything_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.gauge("a_depth").set(2)
        text = registry.render()
        assert text.index("a_depth") < text.index("b_total")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""
