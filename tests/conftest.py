"""Shared helpers for the test suite."""

from __future__ import annotations

import contextlib
import socket

import pytest

from repro.checks.config import (CheckKind, ImplicationMode, OptimizerOptions,
                                 Scheme)
from repro.checks.optimizer import optimize_module
from repro.frontend.parser import parse_source
from repro.interp.machine import Machine
from repro.ir.lowering import LoweringOptions, lower_source_file
from repro.ssa.construct import construct_ssa


def free_tcp_port():
    """An ephemeral 127.0.0.1 port.

    Prefer passing ``port=0`` and reading the bound address back
    (:func:`make_service` does); this is for the rare case where the
    port number must be known before the server exists.  The socket is
    closed before returning, so a race is possible but vanishingly
    rare with the kernel's ephemeral range.
    """
    with contextlib.closing(socket.socket()) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_service(**kwargs):
    """A started :class:`~repro.service.CompileService` on an ephemeral
    port (``port=0`` bind — no fixed ports, no collision flakes under
    parallel CI).  Thread workers by default so suites stay fast;
    callers override ``worker_mode``/``workers``/``pool`` freely."""
    from repro.service import CompileService

    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("worker_mode", "thread")
    service = CompileService(**kwargs)
    service.start()
    return service


def lower(source, insert_checks=True):
    """Parse + lower (no SSA)."""
    return lower_source_file(parse_source(source),
                             LoweringOptions(insert_checks))


def lower_ssa(source, insert_checks=True):
    """Parse + lower + SSA for every function."""
    module = lower(source, insert_checks)
    for function in module:
        construct_ssa(function)
    return module


def compile_and_run(source, options=None, inputs=None, optimize=True,
                    max_steps=5_000_000):
    """Full pipeline; returns the machine after execution."""
    module = lower_ssa(source)
    if optimize:
        optimize_module(module, options or OptimizerOptions())
    machine = Machine(module, inputs, max_steps)
    machine.run()
    return machine


def run_baseline(source, inputs=None, max_steps=5_000_000):
    """Naive-checking run (no optimization)."""
    return compile_and_run(source, inputs=inputs, optimize=False,
                           max_steps=max_steps)


ALL_SCHEMES = tuple(Scheme)
ALL_KINDS = tuple(CheckKind)
ALL_MODES = tuple(ImplicationMode)


@pytest.fixture
def loop_program():
    """A small single-loop program used across many tests."""
    return """
program loopy
  input integer :: n = 10
  integer :: i
  real :: a(0:99), b(100)
  do i = 1, n
    a(i) = a(i - 1) + 1.0
    b(i) = a(i) * 2.0
  end do
  print b(n)
end program
"""
