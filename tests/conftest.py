"""Shared helpers for the test suite."""

from __future__ import annotations

import contextlib
import socket

import pytest

from repro.checks.config import (CheckKind, ImplicationMode, OptimizerOptions,
                                 Scheme)
from repro.checks.optimizer import optimize_module
from repro.frontend.parser import parse_source
from repro.interp.machine import Machine
from repro.ir.lowering import LoweringOptions, lower_source_file
from repro.ssa.construct import construct_ssa


class ReservedPorts:
    """N distinct ephemeral 127.0.0.1 ports, atomically reserved.

    The old ``free_tcp_port()`` helper closed its probe socket before
    returning the number, leaving a window in which the kernel could
    hand the same port to a parallel test (a classic time-of-check /
    time-of-use race).  This helper instead *keeps every reservation
    socket bound* — the kernel cannot reallocate a held port — until
    :meth:`release`, called at the moment of handoff.

    Two usage modes:

    * held (no release): a bound-but-not-listening socket refuses
      connections, so a "nothing listens here" URL is race-free for
      the whole ``with`` block;
    * handoff: ``release()`` (or leaving the block) closes the
      sockets right before the caller binds them itself, shrinking
      the race window from "since the probe" to "one syscall".

    Prefer ``port=0`` + reading the bound address back
    (:func:`make_service` does) whenever the consumer can bind first.
    """

    def __init__(self, count: int = 1):
        self.ports = []
        self._socks = []
        try:
            for _ in range(count):
                sock = socket.socket()
                self._socks.append(sock)
                sock.bind(("127.0.0.1", 0))
                self.ports.append(sock.getsockname()[1])
        except BaseException:
            self.release()
            raise

    def release(self) -> None:
        while self._socks:
            with contextlib.suppress(OSError):
                self._socks.pop().close()

    def __enter__(self) -> "ReservedPorts":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def free_tcp_port():
    """An ephemeral 127.0.0.1 port (released on return — prefer
    :class:`ReservedPorts` held open, or ``port=0``, when possible)."""
    with ReservedPorts(1) as reserved:
        return reserved.ports[0]


def make_service(**kwargs):
    """A started :class:`~repro.service.CompileService` on an ephemeral
    port (``port=0`` bind — no fixed ports, no collision flakes under
    parallel CI).  Thread workers by default so suites stay fast;
    callers override ``worker_mode``/``workers``/``pool`` freely."""
    from repro.service import CompileService

    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("worker_mode", "thread")
    service = CompileService(**kwargs)
    service.start()
    return service


def lower(source, insert_checks=True):
    """Parse + lower (no SSA)."""
    return lower_source_file(parse_source(source),
                             LoweringOptions(insert_checks))


def lower_ssa(source, insert_checks=True):
    """Parse + lower + SSA for every function."""
    module = lower(source, insert_checks)
    for function in module:
        construct_ssa(function)
    return module


def compile_and_run(source, options=None, inputs=None, optimize=True,
                    max_steps=5_000_000):
    """Full pipeline; returns the machine after execution."""
    module = lower_ssa(source)
    if optimize:
        optimize_module(module, options or OptimizerOptions())
    machine = Machine(module, inputs, max_steps)
    machine.run()
    return machine


def run_baseline(source, inputs=None, max_steps=5_000_000):
    """Naive-checking run (no optimization)."""
    return compile_and_run(source, inputs=inputs, optimize=False,
                           max_steps=max_steps)


ALL_SCHEMES = tuple(Scheme)
ALL_KINDS = tuple(CheckKind)
ALL_MODES = tuple(ImplicationMode)


@pytest.fixture
def loop_program():
    """A small single-loop program used across many tests."""
    return """
program loopy
  input integer :: n = 10
  integer :: i
  real :: a(0:99), b(100)
  do i = 1, n
    a(i) = a(i - 1) + 1.0
    b(i) = a(i) * 2.0
  end do
  print b(n)
end program
"""
