"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; these tests keep them
from rotting.  Output is captured and lightly sanity-checked.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "figure1_strengthening.py",
    "figure6_preheader.py",
    "build_ir_directly.py",
    "expression_pre.py",
    "explain_and_backend.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_scheme_comparison_runs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["scheme_comparison.py", "vortex"])
    runpy.run_path(os.path.join(EXAMPLES_DIR, "scheme_comparison.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "vortex" in out
    assert "LLS" in out


def test_reproduce_tables_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["reproduce_tables.py", "--small"])
    runpy.run_path(os.path.join(EXAMPLES_DIR, "reproduce_tables.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Table 2" in out and "Table 3" in out
    assert "overhead estimate" in out
