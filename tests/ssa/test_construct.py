"""Tests for SSA construction."""

from repro.ir import Check, Phi, Var
from repro.ssa import construct_ssa, is_ssa

from ..conftest import lower, lower_ssa


class TestSingleAssignment:
    def test_every_var_defined_once(self, loop_program):
        main = lower_ssa(loop_program).main
        assert is_ssa(main)

    def test_straightline_renaming(self):
        main = lower_ssa("""
program p
  integer :: a
  a = 1
  a = a + 2
  print a
end program
""").main
        assert is_ssa(main)
        names = [inst.def_var().name for inst in main.instructions()
                 if inst.def_var() is not None]
        assert "a.1" in names
        assert "a.2" in names

    def test_parameters_keep_names(self):
        main = lower_ssa("""
program p
  input integer :: n = 1
  integer :: a
  a = n + 1
  print a
end program
""").main
        used = {v.name for inst in main.instructions()
                for v in inst.uses() if isinstance(v, Var)}
        assert "n" in used


class TestPhiPlacement:
    def test_loop_variable_gets_phi(self, loop_program):
        main = lower_ssa(loop_program).main
        header = next(b for b in main.blocks if b.name.startswith("do_head"))
        phi_bases = {phi.dest.base_name() for phi in header.phis()}
        assert "i" in phi_bases

    def test_if_join_gets_phi(self):
        main = lower_ssa("""
program p
  integer :: a, c
  c = 1
  if (c > 0) then
    a = 1
  else
    a = 2
  end if
  print a
end program
""").main
        join = next(b for b in main.blocks if b.name.startswith("if_exit"))
        assert any(phi.dest.base_name() == "a" for phi in join.phis())

    def test_local_temp_gets_no_phi(self):
        main = lower_ssa("""
program p
  integer :: a, i
  a = 0
  do i = 1, 3
    a = a + i * 2
  end do
  print a
end program
""").main
        header = next(b for b in main.blocks if b.name.startswith("do_head"))
        phi_bases = {phi.dest.base_name() for phi in header.phis()}
        # i and a are loop-carried; the multiply temp is block-local
        assert "i" in phi_bases and "a" in phi_bases
        assert not any(base.startswith("t") and base not in ("t0", "t1")
                       and False for base in phi_bases)

    def test_phi_incoming_matches_predecessors(self, loop_program):
        main = lower_ssa(loop_program).main
        preds = main.predecessor_map()
        for block in main.blocks:
            for phi in block.phis():
                assert {id(b) for b, _ in phi.incoming} == \
                    {id(b) for b in preds[block]}


class TestCheckRenaming:
    def test_check_symbols_renamed(self, loop_program):
        main = lower_ssa(loop_program).main
        checks = [i for i in main.instructions() if isinstance(i, Check)]
        assert checks
        for check in checks:
            for sym in check.linexpr.symbols():
                assert check.operands[sym].name == sym
                # loop-carried i is renamed to a version
                if sym.startswith("i."):
                    return
        raise AssertionError("no renamed check symbol found")

    def test_semantics_preserved(self, loop_program):
        from repro.interp import Machine

        plain = lower(loop_program)
        renamed = lower_ssa(loop_program)
        m1 = Machine(plain, {"n": 7})
        m1.run()
        m2 = Machine(renamed, {"n": 7})
        m2.run()
        assert m1.output == m2.output
        assert m1.counters.checks == m2.counters.checks
        assert m1.counters.instructions == m2.counters.instructions


class TestEdgeCases:
    def test_use_before_def_keeps_base_name(self):
        main = lower_ssa("""
program p
  integer :: a, b
  b = a + 1
  a = 2
  print b
end program
""").main
        used = {v.name for inst in main.instructions()
                for v in inst.uses() if isinstance(v, Var)}
        assert "a" in used  # the undefined use keeps the unversioned name

    def test_nested_control_flow(self):
        source = """
program p
  integer :: i, j, s
  s = 0
  do i = 1, 3
    if (mod(i, 2) == 0) then
      s = s + 1
    else
      do j = 1, 2
        s = s + j
      end do
    end if
  end do
  print s
end program
"""
        main = lower_ssa(source).main
        assert is_ssa(main)

    def test_idempotent_verification(self, loop_program):
        module = lower(loop_program)
        domtree = construct_ssa(module.main)
        assert domtree is not None
        assert is_ssa(module.main)
