"""Tests for SSA destruction."""

from repro.interp import Machine
from repro.ir import Phi
from repro.ssa import destruct_ssa, split_critical_edges

from ..conftest import lower_ssa


SWAPPY = """
program p
  integer :: a, b, t, i
  a = 1
  b = 2
  do i = 1, 5
    t = a
    a = b
    b = t
  end do
  print a
  print b
end program
"""


class TestDestruction:
    def test_no_phis_remain(self, loop_program):
        module = lower_ssa(loop_program)
        destruct_ssa(module.main)
        assert not any(isinstance(i, Phi)
                       for i in module.main.instructions())

    def test_semantics_preserved(self, loop_program):
        reference = lower_ssa(loop_program)
        m1 = Machine(reference, {"n": 6})
        m1.run()
        module = lower_ssa(loop_program)
        destruct_ssa(module.main)
        m2 = Machine(module, {"n": 6})
        m2.run()
        assert m1.output == m2.output

    def test_swap_pattern_is_correct(self):
        reference = lower_ssa(SWAPPY)
        m1 = Machine(reference)
        m1.run()
        module = lower_ssa(SWAPPY)
        destruct_ssa(module.main)
        m2 = Machine(module)
        m2.run()
        assert m1.output == m2.output == [2, 1]

    def test_checks_survive(self, loop_program):
        module = lower_ssa(loop_program)
        from repro.ir import Check
        before = sum(1 for i in module.main.instructions()
                     if isinstance(i, Check))
        destruct_ssa(module.main)
        after = sum(1 for i in module.main.instructions()
                    if isinstance(i, Check))
        assert before == after

    def test_whole_module_destruction(self):
        source = """
program p
  input integer :: n = 4
  real :: a(10)
  call fill(n, a)
  print a(1)
end program
subroutine fill(n, a)
  integer :: n, i
  real :: a(10)
  do i = 1, n
    a(i) = real(i)
  end do
end subroutine
"""
        reference = lower_ssa(source)
        m1 = Machine(reference)
        m1.run()
        module = lower_ssa(source)
        for function in module:
            destruct_ssa(function)
        m2 = Machine(module)
        m2.run()
        assert m1.output == m2.output


class TestCriticalEdges:
    def test_no_critical_edges_after_split(self):
        source = """
program p
  integer :: i, s
  s = 0
  do i = 1, 3
    if (mod(i, 2) == 0) then
      s = s + 1
    end if
  end do
  print s
end program
"""
        module = lower_ssa(source)
        main = module.main
        split_critical_edges(main)
        preds = main.predecessor_map()
        for block in main.blocks:
            if len(preds[block]) < 2:
                continue
            for pred in preds[block]:
                assert len(pred.successors()) == 1

    def test_split_preserves_behavior(self):
        source = """
program p
  integer :: i, s
  s = 0
  do i = 1, 4
    if (mod(i, 2) == 0) then
      s = s + i
    end if
  end do
  print s
end program
"""
        reference = lower_ssa(source)
        m1 = Machine(reference)
        m1.run()
        module = lower_ssa(source)
        split_critical_edges(module.main)
        m2 = Machine(module)
        m2.run()
        assert m1.output == m2.output
