"""Tests for def-use chains."""

from repro.ssa import DefUse

from ..conftest import lower_ssa


def chains(source):
    module = lower_ssa(source)
    return DefUse(module.main), module.main


class TestDefUse:
    def test_def_recorded(self):
        du, _ = chains("""
program p
  integer :: a
  a = 1
  print a
end program
""")
        assert du.def_of("a.1") is not None
        assert du.def_block("a.1") is not None

    def test_uses_recorded(self):
        du, _ = chains("""
program p
  integer :: a, b
  a = 1
  b = a + a
  print b
end program
""")
        assert len(du.uses_of("a.1")) >= 1

    def test_param_has_no_def(self):
        du, _ = chains("""
program p
  input integer :: n = 1
  print n
end program
""")
        assert du.def_of("n") is None
        assert du.uses_of("n")

    def test_dead_variable(self):
        du, _ = chains("""
program p
  integer :: a
  a = 1
end program
""")
        assert du.is_dead("a.1")

    def test_phi_counts_as_def_and_use(self, loop_program):
        du, main = chains(loop_program)
        header = next(b for b in main.blocks if b.name.startswith("do_head"))
        phi = header.phis()[0]
        assert du.def_of(phi.dest.name) is phi
