"""Tests for basic-variable materialization."""

from repro.analysis import LoopForest
from repro.induction import BasicVarMaterializer, h_symbol
from repro.interp import Machine
from repro.ir import verify_function

from ..conftest import lower_ssa


def materialize_first_loop(source):
    module = lower_ssa(source)
    main = module.main
    forest = LoopForest(main)
    materializer = BasicVarMaterializer(main, forest)
    loop = forest.inner_to_outer()[0]
    var = materializer.var_for(loop)
    return module, main, forest, loop, var, materializer


SIMPLE = """
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
"""


class TestMaterialization:
    def test_creates_valid_ssa(self):
        module, main, forest, loop, var, _ = materialize_first_loop(SIMPLE)
        verify_function(main)

    def test_var_named_after_loop(self):
        _, _, _, loop, var, _ = materialize_first_loop(SIMPLE)
        assert var.name == h_symbol(loop)

    def test_phi_placed_in_header(self):
        _, _, _, loop, var, _ = materialize_first_loop(SIMPLE)
        assert any(phi.dest == var for phi in loop.header.phis())

    def test_idempotent(self):
        _, _, _, loop, var, materializer = materialize_first_loop(SIMPLE)
        assert materializer.var_for(loop) is var
        assert materializer.materialized(loop) is var

    def test_program_still_runs(self):
        module, *_ = materialize_first_loop(SIMPLE)
        machine = Machine(module)
        machine.run()
        assert machine.output == [15]

    def test_counts_iterations(self):
        # h must step 0,1,2,... : expose it through a print after the loop
        module, main, forest, loop, var, _ = materialize_first_loop(SIMPLE)
        from repro.ir import Print
        exit_block = [b for b in main.blocks
                      if b.name.startswith("do_exit")][0]
        exit_block.insert(0, Print(var))
        machine = Machine(module, {"n": 7})
        machine.run()
        # after a 7-trip loop the header phi has been through h = 7
        assert machine.output[0] == 7
