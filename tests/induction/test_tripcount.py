"""Tests for counted-loop recognition and trip counts."""

from repro.analysis import LoopForest, compute_affine_forms
from repro.induction import find_loop_iv
from repro.symbolic import LinearExpr

from ..conftest import lower_ssa


def iv_for(source, function_name=None):
    module = lower_ssa(source)
    function = (module.functions[function_name]
                if function_name else module.main)
    forest = LoopForest(function)
    env = compute_affine_forms(function)
    assert forest.loops, "expected a loop"
    loop = forest.inner_to_outer()[0]
    return find_loop_iv(function, loop, forest, env)


class TestRecognition:
    def test_unit_step_loop(self):
        iv = iv_for("""
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        assert iv is not None
        assert iv.step == 1
        assert iv.init_affine == LinearExpr.constant(1)
        assert iv.bound_affine == LinearExpr.symbol("n")

    def test_nonunit_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 2, 20, 3
    s = s + i
  end do
  print s
end program
""")
        assert iv.step == 3

    def test_negative_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 10, 1, -1
    s = s + i
  end do
  print s
end program
""")
        assert iv.step == -1
        assert iv.bound_affine == LinearExpr.constant(1)

    def test_expression_bound(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: j, s
  s = 0
  do j = 1, 2 * n
    s = s + j
  end do
  print s
end program
""")
        assert iv.bound_affine == LinearExpr({"n": 2}, 0)

    def test_counted_while_loop_recognized(self):
        # a while loop that is structurally a counted loop is an IV too
        iv = iv_for("""
program p
  integer :: i
  i = 0
  while (i < 5) do
    i = i + 1
  end while
  print i
end program
""")
        assert iv is not None
        assert iv.step == 1
        assert iv.bound_affine.const == 4  # i <= 4 after < normalization

    def test_geometric_while_loop_rejected(self):
        iv = iv_for("""
program p
  integer :: i
  i = 1
  while (i < 100) do
    i = i * 2
  end while
  print i
end program
""")
        assert iv is None

    def test_variant_bound_rejected(self):
        # while-style loop whose bound changes inside the loop
        iv = iv_for("""
program p
  integer :: i, n
  n = 10
  i = 1
  while (i <= n) do
    i = i + 1
    n = n - 1
  end while
  print i
end program
""")
        assert iv is None


class TestDerivedFacts:
    def test_constant_trip_count(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 10

    def test_constant_trip_count_with_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10, 3
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 4  # i = 1, 4, 7, 10

    def test_zero_trip(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 5, 1
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 0

    def test_symbolic_trip_count_is_none(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() is None

    def test_guard_orientation_positive_step(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        lhs, rhs = iv.guard_lhs_rhs()
        assert lhs == LinearExpr.constant(1)
        assert rhs == LinearExpr.symbol("n")

    def test_guard_orientation_negative_step(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = n, 1, -1
    s = s + i
  end do
  print s
end program
""")
        lhs, rhs = iv.guard_lhs_rhs()
        assert lhs == LinearExpr.constant(1)
        assert rhs == LinearExpr.symbol("n")


WHILE_MATRIX = """
program p
  integer :: i, s
  s = 0
  i = %(init)d
  while (i %(op)s %(limit)d) do
    s = s + 1
    i = i %(incr)s
  end while
  print s
end program
"""

_OPS = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}


def _simulate(init, op, limit, step):
    """Reference semantics: how many times does the body run?"""
    i, trips = init, 0
    while _OPS[op](i, limit):
        trips += 1
        i += step
    return trips


def _matrix_iv(init, op, limit, step):
    incr = "+ %d" % step if step > 0 else "- %d" % -step
    source = WHILE_MATRIX % {"init": init, "op": op, "limit": limit,
                             "incr": incr}
    return iv_for(source), source


class TestStepComparisonMatrix:
    """step in {-3, -1, 1, 3} x comparison in {lt, le, gt, ge}: the
    recognizer must accept exactly the direction-consistent half, and
    the derived trip count / at-least-once guard must agree with actual
    execution."""

    import itertools as _it
    VALID = [(op, step, init, limit)
             for op, step in _it.product(("<", "<="), (1, 3))
             for init, limit in ((1, 10), (1, 1), (11, 10))] + \
            [(op, step, init, limit)
             for op, step in _it.product((">", ">="), (-1, -3))
             for init, limit in ((10, 1), (1, 1), (0, 1))]

    import pytest as _pytest

    @_pytest.mark.parametrize("op,step,init,limit", VALID)
    def test_trip_count_matches_execution(self, op, step, init, limit):
        iv, source = _matrix_iv(init, op, limit, step)
        assert iv is not None, "direction-consistent loop not recognized"
        assert iv.step == step
        expected = _simulate(init, op, limit, step)
        assert iv.trip_count_const() == expected
        from ..conftest import run_baseline
        machine = run_baseline(source)
        assert machine.output == [expected]

    @_pytest.mark.parametrize("op,step,init,limit", VALID)
    def test_guard_agrees_with_execution(self, op, step, init, limit):
        iv, _ = _matrix_iv(init, op, limit, step)
        lhs, rhs = iv.guard_lhs_rhs()
        assert lhs.is_constant() and rhs.is_constant()
        guard_holds = lhs.const <= rhs.const
        assert guard_holds == (_simulate(init, op, limit, step) >= 1)

    MISMATCHED = [("<", -1), ("<", -3), ("<=", -1), ("<=", -3),
                  (">", 1), (">", 3), (">=", 1), (">=", 3)]

    @_pytest.mark.parametrize("op,step", MISMATCHED)
    def test_direction_mismatch_rejected(self, op, step):
        init, limit = (10, 1) if step > 0 else (1, 10)
        iv, _ = _matrix_iv(init, op, limit, step)
        assert iv is None
