"""Tests for counted-loop recognition and trip counts."""

from repro.analysis import LoopForest, compute_affine_forms
from repro.induction import find_loop_iv
from repro.symbolic import LinearExpr

from ..conftest import lower_ssa


def iv_for(source, function_name=None):
    module = lower_ssa(source)
    function = (module.functions[function_name]
                if function_name else module.main)
    forest = LoopForest(function)
    env = compute_affine_forms(function)
    assert forest.loops, "expected a loop"
    loop = forest.inner_to_outer()[0]
    return find_loop_iv(function, loop, forest, env)


class TestRecognition:
    def test_unit_step_loop(self):
        iv = iv_for("""
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        assert iv is not None
        assert iv.step == 1
        assert iv.init_affine == LinearExpr.constant(1)
        assert iv.bound_affine == LinearExpr.symbol("n")

    def test_nonunit_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 2, 20, 3
    s = s + i
  end do
  print s
end program
""")
        assert iv.step == 3

    def test_negative_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 10, 1, -1
    s = s + i
  end do
  print s
end program
""")
        assert iv.step == -1
        assert iv.bound_affine == LinearExpr.constant(1)

    def test_expression_bound(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: j, s
  s = 0
  do j = 1, 2 * n
    s = s + j
  end do
  print s
end program
""")
        assert iv.bound_affine == LinearExpr({"n": 2}, 0)

    def test_counted_while_loop_recognized(self):
        # a while loop that is structurally a counted loop is an IV too
        iv = iv_for("""
program p
  integer :: i
  i = 0
  while (i < 5) do
    i = i + 1
  end while
  print i
end program
""")
        assert iv is not None
        assert iv.step == 1
        assert iv.bound_affine.const == 4  # i <= 4 after < normalization

    def test_geometric_while_loop_rejected(self):
        iv = iv_for("""
program p
  integer :: i
  i = 1
  while (i < 100) do
    i = i * 2
  end while
  print i
end program
""")
        assert iv is None

    def test_variant_bound_rejected(self):
        # while-style loop whose bound changes inside the loop
        iv = iv_for("""
program p
  integer :: i, n
  n = 10
  i = 1
  while (i <= n) do
    i = i + 1
    n = n - 1
  end while
  print i
end program
""")
        assert iv is None


class TestDerivedFacts:
    def test_constant_trip_count(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 10

    def test_constant_trip_count_with_step(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10, 3
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 4  # i = 1, 4, 7, 10

    def test_zero_trip(self):
        iv = iv_for("""
program p
  integer :: i, s
  s = 0
  do i = 5, 1
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() == 0

    def test_symbolic_trip_count_is_none(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        assert iv.trip_count_const() is None

    def test_guard_orientation_positive_step(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        lhs, rhs = iv.guard_lhs_rhs()
        assert lhs == LinearExpr.constant(1)
        assert rhs == LinearExpr.symbol("n")

    def test_guard_orientation_negative_step(self):
        iv = iv_for("""
program p
  input integer :: n = 4
  integer :: i, s
  s = 0
  do i = n, 1, -1
    s = s + i
  end do
  print s
end program
""")
        lhs, rhs = iv.guard_lhs_rhs()
        assert lhs == LinearExpr.constant(1)
        assert rhs == LinearExpr.symbol("n")
