"""Tests for induction-expression analysis, including the paper's
Figure 2 example."""

from repro.analysis import LoopForest, compute_affine_forms
from repro.induction import IndKind, InductionAnalysis, h_symbol
from repro.symbolic import Polynomial

from ..conftest import lower_ssa


def analyze(source):
    module = lower_ssa(source)
    main = module.main
    forest = LoopForest(main)
    env = compute_affine_forms(main)
    return InductionAnalysis(main, forest, env), forest, main


FIGURE2 = """
program fig2
  input integer :: n = 5
  integer :: i, j, k, m
  integer :: a(1:100)
  j = 0
  k = 3
  m = 5
  do i = 0, n - 1
    j = j + 1
    k = k + m
    a(k) = 2 * m + 1
  end do
  print j
end program
"""


class TestFigure2:
    """The paper's Figure 2: j linear (h), k linear (5*h+8),
    2*m+1 invariant."""

    def test_j_is_linear(self):
        analysis, forest, _ = analyze(FIGURE2)
        loop = forest.loops[0]
        h = h_symbol(loop)
        j_phis = [name for name in analysis.exprs if name.startswith("j.")]
        classifications = {analysis.classify_symbol(name, loop)
                           for name in j_phis}
        assert IndKind.LINEAR in classifications

    def test_k_has_expr_5h_plus_8(self):
        analysis, forest, _ = analyze(FIGURE2)
        loop = forest.loops[0]
        h = Polynomial.symbol(h_symbol(loop))
        # k2 (the value after k = k + m inside the loop) is 5*h + 8
        want = h * 5 + 8
        exprs = [analysis.expr_of(name) for name in analysis.exprs
                 if name.startswith("k.")]
        assert want in exprs

    def test_invariant_rhs(self):
        analysis, forest, _ = analyze(FIGURE2)
        loop = forest.loops[0]
        # 2*m+1 has m = 5 folded by affine analysis; the stored value is
        # the constant 11, trivially invariant -- check classification
        # of m itself instead
        m_names = [name for name in analysis.exprs if name.startswith("m.")]
        for name in m_names:
            assert analysis.classify_symbol(name, loop) is IndKind.INVARIANT


class TestClassification:
    def test_loop_index_linear(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + 1
  end do
  print s
end program
""")
        loop = forest.loops[0]
        phi_name = loop.header.phis()[0].dest.name
        names = [p.dest.name for p in loop.header.phis()]
        kinds = {analysis.classify_symbol(n, loop) for n in names}
        assert IndKind.LINEAR in kinds

    def test_outer_variable_invariant_in_inner_loop(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 3
  integer :: i, j, s
  s = 0
  do i = 1, n
    do j = 1, n
      s = s + 1
    end do
  end do
  print s
end program
""")
        inner = forest.inner_to_outer()[0]
        outer = forest.inner_to_outer()[1]
        i_phi = [p.dest.name for p in outer.header.phis()
                 if p.dest.base_name() == "i"][0]
        assert analysis.classify_symbol(i_phi, inner) is IndKind.INVARIANT
        assert analysis.classify_symbol(i_phi, outer) is IndKind.LINEAR

    def test_inner_h_variant_in_outer(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 3
  integer :: i, j, s
  s = 0
  do i = 1, n
    do j = 1, i
      s = s + 1
    end do
  end do
  print s
end program
""")
        inner = forest.inner_to_outer()[0]
        outer = forest.inner_to_outer()[1]
        j_phi = [p.dest.name for p in inner.header.phis()
                 if p.dest.base_name() == "j"][0]
        assert analysis.classify_symbol(j_phi, outer) is IndKind.UNKNOWN

    def test_second_order_recurrence_is_polynomial(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 5
  integer :: i, k, s
  k = 0
  s = 0
  do i = 1, n
    k = k + i
    s = s + k
  end do
  print k
end program
""")
        loop = forest.loops[0]
        k_names = [name for name in analysis.poly_marks
                   if name.startswith("k.")]
        assert k_names
        for name in k_names:
            assert analysis.classify_symbol(name, loop) is IndKind.POLYNOMIAL

    def test_triangular_offset_is_polynomial(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 5
  integer :: i, off
  off = 0
  do i = 1, n
    off = (i * (i - 1)) / 2
  end do
  print off
end program
""")
        loop = forest.loops[0]
        off_defs = [name for name in analysis.poly_marks
                    if name.startswith("t") or name.startswith("off")]
        assert off_defs  # the division result is marked polynomial

    def test_invariant_assignment_inside_loop(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: base = 7
  integer :: i, m, s
  s = 0
  do i = 1, 5
    m = base + 2
    s = s + m
  end do
  print s
end program
""")
        loop = forest.loops[0]
        m_defs = [name for name in analysis.exprs if name.startswith("m.")]
        assert any(analysis.classify_symbol(name, loop) is IndKind.INVARIANT
                   for name in m_defs)


class TestLinearParts:
    def test_decomposition(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 5
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + 1
  end do
  print s
end program
""")
        loop = forest.loops[0]
        i_phi = [p.dest.name for p in loop.header.phis()
                 if p.dest.base_name() == "i"][0]
        poly = analysis.expr_of(i_phi)
        parts = analysis.linear_parts(poly, loop)
        assert parts is not None
        coeff, rest = parts
        assert coeff == 1
        assert rest.constant_value() == 1  # i = h + 1

    def test_mixed_term_rejected(self):
        analysis, forest, _ = analyze("""
program p
  input integer :: n = 5, m = 2
  integer :: i, k, s
  k = 0
  s = 0
  do i = 1, n
    k = k + m
    s = s + k
  end do
  print s
end program
""")
        loop = forest.loops[0]
        k_names = [name for name in analysis.exprs if name.startswith("k.")]
        for name in k_names:
            poly = analysis.expr_of(name)
            if analysis.classify_poly(poly, loop) is IndKind.LINEAR:
                # k = m*h + ... has a symbolic coefficient on h
                assert analysis.linear_parts(poly, loop) is None
                return
        raise AssertionError("expected a linear k with symbolic stride")

    def test_loop_of_h(self):
        analysis, forest, _ = analyze("""
program p
  integer :: i, s
  s = 0
  do i = 1, 5
    s = s + 1
  end do
  print s
end program
""")
        loop = forest.loops[0]
        assert analysis.loop_of_h(h_symbol(loop)) is loop
        assert analysis.loop_of_h("not-an-h") is None
