"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (CompileTimeTrap, InterpError, IRError, LexError,
                          ParseError, RangeTrap, ReproError, SemanticError,
                          SourceError)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (SourceError("x"), LexError("x"), ParseError("x"),
                    SemanticError("x"), IRError("x"), InterpError("x"),
                    RangeTrap("x"), CompileTimeTrap("x")):
            assert isinstance(exc, ReproError)

    def test_source_errors_are_catchable_together(self):
        for cls in (LexError, ParseError, SemanticError):
            assert issubclass(cls, SourceError)

    def test_range_trap_is_interp_error(self):
        assert issubclass(RangeTrap, InterpError)


class TestFormatting:
    def test_message_only(self):
        assert str(SourceError("boom")) == "boom"

    def test_with_line(self):
        assert str(SourceError("boom", 12)) == "line 12: boom"

    def test_with_line_and_column(self):
        assert str(SourceError("boom", 12, 3)) == "line 12, column 3: boom"

    def test_trap_carries_check_repr(self):
        trap = RangeTrap("failed", "check (i <= 9)")
        assert trap.check_repr == "check (i <= 9)"


class TestCatchability:
    def test_frontend_error_is_catchable_at_api_level(self):
        from repro import compile_source
        with pytest.raises(ReproError):
            compile_source("program p\nif then\nend program")

    def test_semantic_error_is_catchable(self):
        from repro import compile_source
        with pytest.raises(SemanticError):
            compile_source("program p\ni = 1\nend program")
