"""Tests for the canonical check form (paper section 2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.checks import CanonicalCheck, bounds_checks_for, make_check
from repro.ir import INT, Var
from repro.symbolic import LinearExpr

symbols = st.sampled_from(["i", "j", "n"])
coeffs = st.integers(-9, 9)
linexprs = st.builds(LinearExpr,
                     st.dictionaries(symbols, coeffs, max_size=3), coeffs)
envs = st.fixed_dictionaries({s: st.integers(-50, 50)
                              for s in ["i", "j", "n"]})


class TestCanonicalization:
    def test_constant_term_folds_into_bound(self):
        check = CanonicalCheck(LinearExpr({"i": 1}, 3), 10)
        assert check.linexpr.const == 0
        assert check.bound == 7

    def test_upper_bound_construction(self):
        # i + 1 <= 4*n  becomes  i - 4n <= -1  (the paper's example)
        check = CanonicalCheck.upper(LinearExpr({"i": 1}, 1),
                                     LinearExpr({"n": 4}, 0))
        assert check.linexpr == LinearExpr({"i": 1, "n": -4}, 0)
        assert check.bound == -1

    def test_lower_bound_negates(self):
        # i + 1 >= 4  becomes  -i <= -3  (the paper's example)
        check = CanonicalCheck.lower(LinearExpr({"i": 1}, 1),
                                     LinearExpr.constant(4))
        assert check.linexpr == LinearExpr({"i": -1}, 0)
        assert check.bound == -3

    def test_figure1_canonical_forms(self):
        # A[5..10], subscript 2*N: checks C1, C2 from Figure 1
        two_n = LinearExpr({"n": 2}, 0)
        c1 = CanonicalCheck.lower(two_n, LinearExpr.constant(5))
        c2 = CanonicalCheck.upper(two_n, LinearExpr.constant(10))
        assert c1 == CanonicalCheck(LinearExpr({"n": -2}, 0), -5)
        assert c2 == CanonicalCheck(LinearExpr({"n": 2}, 0), 10)
        # subscript 2*N-1: checks C3, C4
        two_n_m1 = LinearExpr({"n": 2}, -1)
        c3 = CanonicalCheck.lower(two_n_m1, LinearExpr.constant(5))
        c4 = CanonicalCheck.upper(two_n_m1, LinearExpr.constant(10))
        assert c3 == CanonicalCheck(LinearExpr({"n": -2}, 0), -6)
        assert c4 == CanonicalCheck(LinearExpr({"n": 2}, 0), 11)
        # C3 is stronger than C1, C2 stronger than C4 (same families)
        assert c3.implies_same_family(c1)
        assert c2.implies_same_family(c4)
        assert not c1.implies_same_family(c3)

    def test_equivalent_checks_unify(self):
        a = CanonicalCheck.upper(LinearExpr({"i": 1, "j": 1}, 0),
                                 LinearExpr.constant(10))
        b = CanonicalCheck.upper(LinearExpr({"j": 1, "i": 1}, 2),
                                 LinearExpr.constant(12))
        assert a == b
        assert hash(a) == hash(b)

    def test_family_is_range_expression(self):
        check = CanonicalCheck(LinearExpr({"i": 1}, 0), 5)
        assert check.family == LinearExpr({"i": 1}, 0)

    def test_with_bound(self):
        check = CanonicalCheck(LinearExpr({"i": 1}, 0), 5)
        assert check.with_bound(9).bound == 9
        assert check.with_bound(9).linexpr == check.linexpr


class TestCompileTime:
    def test_constant_check_true(self):
        check = CanonicalCheck(LinearExpr.constant(3), 5)
        assert check.is_compile_time()
        assert check.evaluate_compile_time() is True

    def test_constant_check_false(self):
        check = CanonicalCheck(LinearExpr.constant(7), 5)
        assert check.evaluate_compile_time() is False

    def test_symbolic_check_has_no_verdict(self):
        check = CanonicalCheck(LinearExpr({"i": 1}, 0), 5)
        assert not check.is_compile_time()
        assert check.evaluate_compile_time() is None


class TestBoundsChecksFor:
    def test_pair_construction(self):
        low, high = bounds_checks_for(LinearExpr({"i": 1}, 0),
                                      LinearExpr.constant(1),
                                      LinearExpr.constant(100))
        assert low == CanonicalCheck(LinearExpr({"i": -1}, 0), -1)
        assert high == CanonicalCheck(LinearExpr({"i": 1}, 0), 100)

    def test_symbolic_upper_bound(self):
        _, high = bounds_checks_for(LinearExpr({"i": 1}, 0),
                                    LinearExpr.constant(1),
                                    LinearExpr.symbol("n"))
        assert high.linexpr == LinearExpr({"i": 1, "n": -1}, 0)
        assert high.bound == 0


class TestMakeCheck:
    def test_operands_bound_by_symbol(self):
        canonical = CanonicalCheck(LinearExpr({"i": 1, "n": -1}, 0), 0)
        variables = {"i": Var("i", INT), "n": Var("n", INT)}
        check = make_check(canonical, variables, "upper", "a")
        assert check.operands["i"] == Var("i", INT)
        assert check.array == "a"

    def test_missing_variable_raises(self):
        canonical = CanonicalCheck(LinearExpr({"i": 1}, 0), 0)
        with pytest.raises(KeyError):
            make_check(canonical, {}, "upper")


class TestProperties:
    @given(linexprs, coeffs, envs)
    def test_canonicalization_preserves_truth(self, expr, bound, env):
        """(expr <= bound) iff the canonical form holds."""
        check = CanonicalCheck(expr, bound)
        original = expr.evaluate(env) <= bound
        canonical = check.linexpr.evaluate(env) <= check.bound
        assert original == canonical

    @given(linexprs, linexprs, envs)
    def test_upper_construction_preserves_truth(self, sub, bound, env):
        check = CanonicalCheck.upper(sub, bound)
        assert (sub.evaluate(env) <= bound.evaluate(env)) == \
            (check.linexpr.evaluate(env) <= check.bound)

    @given(linexprs, linexprs, envs)
    def test_lower_construction_preserves_truth(self, sub, bound, env):
        check = CanonicalCheck.lower(sub, bound)
        assert (sub.evaluate(env) >= bound.evaluate(env)) == \
            (check.linexpr.evaluate(env) <= check.bound)

    @given(linexprs, coeffs, coeffs, envs)
    def test_same_family_implication_is_sound(self, expr, b1, b2, env):
        strong = CanonicalCheck(expr, min(b1, b2))
        weak = CanonicalCheck(expr, max(b1, b2))
        assert strong.implies_same_family(weak)
        if strong.linexpr.evaluate(env) <= strong.bound:
            assert weak.linexpr.evaluate(env) <= weak.bound
