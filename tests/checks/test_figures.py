"""Figure-level reproductions asserted against the paper's claims."""

from repro.reporting import (all_figures, figure1_availability,
                             figure1_strengthening, figure5_safe_earliest,
                             figure6_preheader)


class TestFigure1:
    """Figure 1: 4 subscript checks; availability leaves 3;
    strengthening leaves 2."""

    def test_availability_removes_one_subscript_check(self):
        report = figure1_availability()
        # the source adds one constant-subscript access (2 compile-time
        # checks) that folding removes; of the figure's four checks,
        # availability eliminates C4
        assert report.checks_after == 3

    def test_strengthening_reaches_two(self):
        report = figure1_strengthening()
        assert report.checks_after == 2

    def test_final_checks_match_paper(self):
        report = figure1_strengthening()
        assert "check (-2*n <= -6)" in report.after_ir  # C3
        assert "check (2*n <= 10)" in report.after_ir   # C2


class TestFigure5:
    def test_se_inserts_above_branch(self):
        report = figure5_safe_earliest()
        # after SE, the branch arms carry no checks; the hoisted checks
        # sit before the branch
        assert report.checks_after <= report.checks_before

    def test_branch_arms_clean(self):
        report = figure5_safe_earliest()
        after_lines = report.after_ir.splitlines()
        then_region = False
        for line in after_lines:
            if line.startswith("if_then"):
                then_region = True
            elif then_region and line.startswith(("if_", "entry", "dead")):
                break
            elif then_region:
                assert "check" not in line


class TestFigure6:
    def test_loop_body_check_free(self):
        report = figure6_preheader()
        lines = report.after_ir.splitlines()
        in_body = False
        for line in lines:
            if line.startswith("do_body"):
                in_body = True
            elif in_body and not line.startswith("  "):
                in_body = False
            elif in_body:
                assert "check" not in line

    def test_preheader_has_cond_checks(self):
        report = figure6_preheader()
        assert "cond-check" in report.after_ir

    def test_substituted_limit_check(self):
        report = figure6_preheader()
        assert "cond-check (2*n <= 10)" in report.after_ir

    def test_invariant_check_hoisted(self):
        report = figure6_preheader()
        assert "cond-check (k <= 10)" in report.after_ir


class TestRegistry:
    def test_all_figures_present(self):
        figures = all_figures()
        assert set(figures) == {"figure1-NI", "figure1-CS", "figure5-SE",
                                "figure6-LLS"}

    def test_reports_render(self):
        for report in all_figures().values():
            text = str(report)
            assert "before" in text and "after" in text
