"""Behavior-preservation (soundness) tests for the optimizer.

The paper's correctness contract (section 3): a range violation is
detected in the optimized program iff it is detected in the unoptimized
program, and no later.  These tests drive every scheme/kind/mode
combination over trapping and non-trapping programs, plus a
hypothesis-driven family of randomized loop programs.

An ``InterpError`` (out-of-bounds access reaching memory) would mean a
check was wrongly deleted -- the interpreter's array storage is an
independent safety net.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checks import (CheckKind, ImplicationMode, OptimizerOptions,
                          Scheme, optimize_module)
from repro.errors import RangeTrap
from repro.interp import Machine

from ..conftest import ALL_KINDS, ALL_MODES, ALL_SCHEMES, lower_ssa

TRAPPING = """
program trapping
  input integer :: n = 20
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
end program
"""

CONDITIONAL_TRAP = """
program condtrap
  input integer :: n = 5, c = 0
  integer :: i
  real :: a(10)
  do i = 1, n
    if (c > 0) then
      a(i + 8) = 1.0
    else
      a(i) = 2.0
    end if
  end do
  print a(1)
end program
"""


def run_with(source, options, inputs):
    module = lower_ssa(source)
    optimize_module(module, options)
    machine = Machine(module, inputs, max_steps=2_000_000)
    machine.run()
    return machine


def outcome(source, options, inputs):
    """('trap', None) or ('ok', output)."""
    try:
        machine = run_with(source, options, inputs)
    except RangeTrap:
        return ("trap", None)
    return ("ok", machine.output)


def baseline_outcome(source, inputs):
    module = lower_ssa(source)
    try:
        machine = Machine(module, inputs, max_steps=2_000_000)
        machine.run()
    except RangeTrap:
        return ("trap", None)
    return ("ok", machine.output)


class TestTrapPreservation:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_violation_still_traps(self, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        assert outcome(TRAPPING, options, {"n": 20})[0] == "trap"

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_no_false_trap_when_in_bounds(self, scheme):
        options = OptimizerOptions(scheme=scheme)
        assert outcome(TRAPPING, options, {"n": 10})[0] == "ok"

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_zero_trip_loop_never_traps(self, scheme):
        options = OptimizerOptions(scheme=scheme)
        # n = 0: the loop body (and its violation) never executes
        assert outcome(TRAPPING, options, {"n": 0})[0] == "ok"

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("c", [0, 1])
    def test_branch_dependent_trap(self, scheme, c):
        options = OptimizerOptions(scheme=scheme)
        expected = baseline_outcome(CONDITIONAL_TRAP, {"n": 5, "c": c})
        assert outcome(CONDITIONAL_TRAP, options, {"n": 5, "c": c}) == \
            expected

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_modes_preserve_traps(self, mode):
        options = OptimizerOptions(scheme=Scheme.LLS, implication=mode)
        assert outcome(TRAPPING, options, {"n": 11})[0] == "trap"
        assert outcome(TRAPPING, options, {"n": 10})[0] == "ok"


class TestNegativeStepLoops:
    SOURCE = """
program down
  input integer :: hi = 10, lo = 1
  integer :: i
  real :: a(10)
  do i = hi, lo, -1
    a(i) = real(i)
  end do
  print a(1)
end program
"""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_downward_loop_ok(self, scheme):
        options = OptimizerOptions(scheme=scheme)
        expected = baseline_outcome(self.SOURCE, {"hi": 10, "lo": 1})
        assert outcome(self.SOURCE, options, {"hi": 10, "lo": 1}) == expected

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_downward_loop_traps(self, scheme):
        options = OptimizerOptions(scheme=scheme)
        assert outcome(self.SOURCE, options, {"hi": 11, "lo": 1})[0] == "trap"


class TestStridedLoops:
    SOURCE = """
program strided
  input integer :: n = 19, s = 3
  integer :: i
  real :: a(20)
  do i = 1, n, 3
    a(i) = 1.0
  end do
  print a(1)
end program
"""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("n", [0, 1, 19, 20])
    def test_strided_matches_baseline(self, scheme, n):
        options = OptimizerOptions(scheme=scheme)
        expected = baseline_outcome(self.SOURCE, {"n": n})
        assert outcome(self.SOURCE, options, {"n": n}) == expected

    @pytest.mark.parametrize("scheme", [Scheme.LLS, Scheme.ALL])
    def test_strided_traps_past_bound(self, scheme):
        options = OptimizerOptions(scheme=scheme)
        # i = 1, 4, ..., 22 > 20: must trap
        assert outcome(self.SOURCE, options, {"n": 22})[0] == "trap"


RANDOM_TEMPLATE = """
program random
  input integer :: n = 1, m = 1, c = 0
  integer :: i, j
  real :: a(%(asize)d), b(0:%(bsize)d)
  do i = %(start)d, n
    a(%(coef)d * i + %(off)d) = 1.0
    if (c > 0) then
      b(i - %(boff)d) = 2.0
    end if
    do j = 1, m
      a(j) = a(j) + 1.0
    end do
  end do
  print a(%(asize)d)
end program
"""


@st.composite
def random_programs(draw):
    params = {
        "asize": draw(st.integers(5, 30)),
        "bsize": draw(st.integers(5, 30)),
        "start": draw(st.integers(1, 3)),
        "coef": draw(st.integers(1, 3)),
        "off": draw(st.integers(-2, 3)),
        "boff": draw(st.integers(0, 3)),
    }
    inputs = {
        "n": draw(st.integers(0, 12)),
        "m": draw(st.integers(0, 8)),
        "c": draw(st.integers(0, 1)),
    }
    scheme = draw(st.sampled_from(list(Scheme)))
    kind = draw(st.sampled_from(list(CheckKind)))
    mode = draw(st.sampled_from(list(ImplicationMode)))
    return RANDOM_TEMPLATE % params, inputs, \
        OptimizerOptions(scheme=scheme, kind=kind, implication=mode)


class TestRandomizedBehaviorPreservation:
    @settings(max_examples=60, deadline=None)
    @given(random_programs())
    def test_optimized_matches_baseline(self, case):
        source, inputs, options = case
        expected = baseline_outcome(source, inputs)
        assert outcome(source, options, inputs) == expected
