"""Tests for the value-range (abstract interpretation) baseline."""

import pytest

from repro.checks import OptimizerOptions, Scheme, count_checks, \
    optimize_module
from repro.checks.valuerange import eliminate_by_value_range
from repro.errors import RangeTrap
from repro.ir import Trap

from ..conftest import compile_and_run, lower_ssa, run_baseline


class TestValueRangeElimination:
    def test_constant_bound_loop_fully_proven(self):
        module = lower_ssa("""
program p
  integer :: i
  real :: a(10)
  do i = 1, 10
    a(i) = 1.0
  end do
end program
""")
        removed, reports = eliminate_by_value_range(module.main)
        assert removed == 2
        assert count_checks(module.main) == 0
        assert reports == []

    def test_symbolic_bound_keeps_upper_check(self):
        module = lower_ssa("""
program p
  input integer :: n = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
end program
""")
        removed, reports = eliminate_by_value_range(module.main)
        assert removed == 1          # the lower check i >= 1 is provable
        assert count_checks(module.main) == 1

    def test_provably_failing_check_reported(self):
        module = lower_ssa("""
program p
  integer :: i
  real :: a(10)
  do i = 11, 20
    a(i) = 1.0
  end do
end program
""")
        removed, reports = eliminate_by_value_range(module.main)
        assert reports
        assert any(isinstance(inst, Trap)
                   for inst in module.main.instructions())

    def test_branch_refinement_proves_checks(self):
        module = lower_ssa("""
program p
  input integer :: k = 5
  real :: a(10)
  if (k >= 1) then
    if (k <= 10) then
      a(k) = 1.0
    end if
  end if
end program
""")
        removed, reports = eliminate_by_value_range(module.main)
        assert removed == 2
        assert count_checks(module.main) == 0


class TestVRScheme:
    def test_vr_weaker_than_ni(self):
        """The paper's prediction: compile-time-only elimination removes
        fewer checks than the insertion-based algorithms."""
        source = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(50), b(50)
  do i = 1, n
    a(i) = b(i) + a(i)
  end do
  print a(1)
end program
"""
        vr = compile_and_run(source, OptimizerOptions(scheme=Scheme.VR))
        ni = compile_and_run(source, OptimizerOptions(scheme=Scheme.NI))
        lls = compile_and_run(source, OptimizerOptions(scheme=Scheme.LLS))
        assert lls.counters.checks < ni.counters.checks < \
            vr.counters.checks

    def test_vr_output_preserved(self, loop_program):
        baseline = run_baseline(loop_program, {"n": 9})
        vr = compile_and_run(loop_program, OptimizerOptions(scheme=Scheme.VR),
                             {"n": 9})
        assert vr.output == baseline.output

    def test_vr_traps_preserved(self):
        source = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = 1.0
  end do
end program
"""
        with pytest.raises(RangeTrap):
            compile_and_run(source, OptimizerOptions(scheme=Scheme.VR),
                            {"n": 20})

    def test_vr_shines_on_static_programs(self):
        """All-constant bounds: VR alone removes everything."""
        source = """
program p
  integer :: i, j
  real :: c(10, 20)
  do i = 1, 10
    do j = 1, 20
      c(i, j) = 1.0
    end do
  end do
  print c(1, 1)
end program
"""
        vr = compile_and_run(source, OptimizerOptions(scheme=Scheme.VR))
        assert vr.counters.checks == 0

    def test_vr_on_suite_is_sound(self):
        from repro.benchsuite import all_programs
        from repro.pipeline.stats import verify_same_output

        for program in all_programs():
            assert verify_same_output(program.source,
                                      OptimizerOptions(scheme=Scheme.VR),
                                      program.test_inputs)
