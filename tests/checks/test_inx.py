"""Tests for INX-check construction (rewriting to induction form)."""

from repro.analysis import LoopForest, compute_affine_forms
from repro.checks import CanonicalCheck, rewrite_checks_to_inx
from repro.induction import BasicVarMaterializer, InductionAnalysis, h_symbol
from repro.interp import Machine
from repro.ir import Check, verify_function

from ..conftest import lower_ssa


def rewrite(source):
    module = lower_ssa(source)
    main = module.main
    forest = LoopForest(main)
    env = compute_affine_forms(main)
    induction = InductionAnalysis(main, forest, env)
    materializer = BasicVarMaterializer(main, forest)
    count = rewrite_checks_to_inx(main, induction, env, materializer)
    verify_function(main)
    return module, main, forest, count


FIGURE2_STYLE = """
program p
  input integer :: n = 6
  integer :: i, k, m
  real :: a(100)
  k = 3
  m = 5
  do i = 0, n - 1
    k = k + m
    a(k) = 2.0
  end do
  print a(8)
end program
"""


class TestRewriting:
    def test_derived_iv_becomes_h_expression(self):
        module, main, forest, count = rewrite(FIGURE2_STYLE)
        assert count >= 1
        loop = forest.loops[0]
        h = h_symbol(loop)
        rewritten = [c for c in main.instructions()
                     if isinstance(c, Check) and h in c.linexpr.symbols()]
        assert rewritten
        # the paper's INX-Check (5*h <= 92) for A[k] with bound 100:
        # k2 = 5h+8, so upper is 5h <= 92
        uppers = [CanonicalCheck.of(c) for c in rewritten
                  if c.kind == "upper"]
        assert any(c.linexpr.coefficient(h) == 5 and c.bound == 92
                   for c in uppers)

    def test_loop_index_checks_rewritten_to_h(self):
        module, main, forest, count = rewrite("""
program p
  input integer :: n = 6
  integer :: i
  real :: a(100)
  do i = 1, n
    a(i) = 1.0
  end do
  print a(1)
end program
""")
        loop = forest.loops[0]
        h = h_symbol(loop)
        # i = h + 1, so (i <= 100) becomes (h <= 99)
        uppers = [CanonicalCheck.of(c) for c in main.instructions()
                  if isinstance(c, Check) and c.kind == "upper"]
        assert any(c.linexpr == __import__(
            "repro.symbolic", fromlist=["LinearExpr"]
        ).LinearExpr({h: 1}, 0) and c.bound == 99 for c in uppers)

    def test_equivalent_program_expressions_unify(self):
        module, main, forest, count = rewrite("""
program p
  input integer :: n = 6
  integer :: i, k
  real :: a(100), b(100)
  do i = 1, n
    k = i
    a(i) = 1.0
    b(k) = 2.0
  end do
  print a(1)
end program
""")
        families = {c.linexpr for c in main.instructions()
                    if isinstance(c, Check)}
        # a(i) and b(k) collapse onto the same h family
        uppers = [c for c in main.instructions()
                  if isinstance(c, Check) and c.kind == "upper"]
        assert uppers[0].linexpr == uppers[1].linexpr

    def test_polynomial_subscript_keeps_prx_form(self):
        module, main, forest, count = rewrite("""
program p
  input integer :: n = 6
  integer :: i, k
  real :: a(100)
  k = 0
  do i = 1, n
    k = k + i
    a(k) = 1.0
  end do
  print a(1)
end program
""")
        loop = forest.loops[0]
        h = h_symbol(loop)
        for check in main.instructions():
            if isinstance(check, Check):
                assert h not in check.linexpr.symbols()

    def test_semantics_preserved(self):
        reference = lower_ssa(FIGURE2_STYLE)
        m1 = Machine(reference)
        m1.run()
        module, main, forest, count = rewrite(FIGURE2_STYLE)
        m2 = Machine(module)
        m2.run()
        assert m1.output == m2.output
        assert m1.counters.checks == m2.counters.checks

    def test_rewrite_reports_count(self):
        module, main, forest, count = rewrite(FIGURE2_STYLE)
        total = sum(1 for i in main.instructions() if isinstance(i, Check))
        assert 0 < count <= total
