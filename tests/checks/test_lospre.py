"""Profile-guided lospre placement (``Scheme.LO``).

Covers the three layers: the deterministic max-flow primitive, the
profiled cost function (cold vs unknown edges, observed-count
baselines), and the end-to-end placement policy — degrade to latest
without a profile, tie under a consistent profile (flow conservation
makes every cut cost exactly the latest cost), never speculate on a
merely *truncated* training run (real flow only leaks downstream, so
the latest placement is the cheapest observed cut), and fire cuts
exactly when a genuinely inconsistent profile (hand-built here,
cross-input training in the field) prices an upstream edge strictly
under the latest edges.
"""

import pytest

from repro.checks.config import CheckKind, OptimizerOptions, Scheme
from repro.checks.lospre import _EdgeWeights, _FlowNetwork
from repro.pipeline.driver import compile_source
from repro.pipeline.profile import EdgeProfile, source_digest, train_profile

LOOP = """
program p
  input integer :: n = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(n)
end program
"""

# a(t)'s check is anticipatable through both arms of the branch up to
# t's definition, so its postponement region is the whole diamond:
# earliest on the two split edges, latest on the two join edges
DIAMOND = """
program p
  input integer :: n = 5
  integer :: t
  real :: a(10)
  t = 2*n
  if (n > 2) then
    print 1
  else
    print 2
  end if
  a(t) = 3.0
end program
"""


def lying_diamond_profile():
    """A profile no real run could produce: the join edges claim 50
    traversals each while the split edges claim one -- flow
    conservation is violated, so the min cut (the cheap split edges)
    strictly beats the latest placement (the hot join edges)."""
    return EdgeProfile(source_digest(DIAMOND), {"p": {
        ("", "entry0"): 1,
        ("entry0", "if_then2"): 1,
        ("entry0", "if_else3"): 1,
        ("if_then2", "if_exit1"): 50,
        ("if_else3", "if_exit1"): 50,
    }})


class _Block:
    """Stands in for a BasicBlock: _EdgeWeights only reads ``.name``."""

    def __init__(self, name):
        self.name = name


class TestFlowNetwork:
    def test_single_path_bottleneck(self):
        net = _FlowNetwork()
        net.add_arc(0, 2, 5)
        net.add_arc(2, 1, 3)
        assert net.max_flow(0, 1) == 3
        # the saturated arc is the cut: node 2 stays source-side
        assert net.source_side(0) == {0, 2}

    def test_parallel_paths_sum(self):
        net = _FlowNetwork()
        net.add_arc(0, 2, 4)
        net.add_arc(2, 1, 4)
        net.add_arc(0, 3, 7)
        net.add_arc(3, 1, 7)
        assert net.max_flow(0, 1) == 11

    def test_cut_picks_cheap_side(self):
        # S -> a (inf) -> b (cost 1) -> T (cost 10): cut the cheap arc
        net = _FlowNetwork()
        net.add_arc(0, 2, 1 << 60)
        cheap = net.add_arc(2, 3, 1)
        net.add_arc(3, 1, 10)
        assert net.max_flow(0, 1) == 1
        side = net.source_side(0)
        assert net.heads[cheap ^ 1] in side      # tail source-side
        assert net.heads[cheap] not in side      # head sink-side

    def test_flow_needs_augmenting_back_edge(self):
        # the classic undo case: a greedy first path must be rerouted
        # through the residual (reverse) arc to reach max flow 2
        net = _FlowNetwork()
        net.add_arc(0, 2, 1)
        net.add_arc(0, 3, 1)
        net.add_arc(2, 3, 1)
        net.add_arc(2, 1, 1)
        net.add_arc(3, 1, 1)
        assert net.max_flow(0, 1) == 2


class TestEdgeWeights:
    def _profile(self):
        return EdgeProfile("0" * 64, {"f": {
            ("", "entry"): 2,
            ("entry", "loop"): 10,
            ("loop", "loop"): 88,
        }})

    def test_recorded_edge_uses_count(self):
        weights = _EdgeWeights(self._profile(), "f")
        assert weights.trained
        assert weights.weight((_Block("entry"), _Block("loop"))) == 10

    def test_entry_edge_uses_pseudo_count(self):
        weights = _EdgeWeights(self._profile(), "f")
        assert weights.weight((None, _Block("entry"))) == 2

    def test_unseen_edge_between_known_blocks_is_cold(self):
        weights = _EdgeWeights(self._profile(), "f")
        assert weights.weight((_Block("loop"), _Block("entry"))) == 0

    def test_edge_into_unknown_block_is_hot(self):
        weights = _EdgeWeights(self._profile(), "f")
        hot = 2 + 10 + 88 + 1
        assert weights.hot == hot
        assert weights.weight((_Block("entry"), _Block("mystery"))) == hot

    def test_unprofiled_function_is_untrained(self):
        weights = _EdgeWeights(self._profile(), "other")
        assert not weights.trained


class TestPlacementPolicy:
    def test_without_profile_degrades_to_latest(self):
        bare = compile_source(LOOP, OptimizerOptions(scheme=Scheme.LO))
        assert bare.total_stats().lospre_cuts == 0
        lls = compile_source(LOOP, OptimizerOptions(scheme=Scheme.LLS))
        assert bare.run({"n": 5}).counters.effective_checks() \
            == lls.run({"n": 5}).counters.effective_checks()

    def test_consistent_profile_never_speculates(self):
        # a complete training run satisfies flow conservation, so every
        # cut ties the latest cost and the tie keeps latest verbatim
        profile = train_profile(LOOP, OptimizerOptions(scheme=Scheme.LO),
                                {"n": 5})
        trained = compile_source(LOOP, OptimizerOptions(
            Scheme.LO, profile=profile))
        assert trained.total_stats().lospre_cuts == 0
        bare = compile_source(LOOP, OptimizerOptions(scheme=Scheme.LO))
        assert trained.run({"n": 5}).counters.effective_checks() \
            == bare.run({"n": 5}).counters.effective_checks()

    def test_inconsistent_profile_fires_cuts(self):
        # hand-built flow-conservation violation: the join edges claim
        # 100 combined traversals, the split edges one each, so the
        # min cut (split edges) strictly beats latest (join edges)
        trained = compile_source(DIAMOND, OptimizerOptions(
            Scheme.LO, profile=lying_diamond_profile()))
        assert trained.total_stats().lospre_cuts > 0
        lls = compile_source(DIAMOND, OptimizerOptions(scheme=Scheme.LLS))
        run_lo = trained.run({"n": 5})
        run_lls = lls.run({"n": 5})
        # the speculated placement still computes the same program ...
        assert run_lo.output == run_lls.output
        # ... without doing more dynamic work on the real input (one
        # split-edge insertion executes per run, standing in for the
        # join check it eliminated)
        assert run_lo.counters.effective_checks() \
            <= run_lls.counters.effective_checks()

    def test_truncated_training_never_speculates(self):
        # a trap during training leaves only the entry pseudo-edge:
        # every downstream block observed zero executions.  Real flow
        # only leaks downstream, so the latest placement is already
        # the cheapest observed cut -- speculating on a truncated
        # profile could only add checks the training run never paid
        # for, so no cut may fire
        profile = train_profile(LOOP, OptimizerOptions(scheme=Scheme.LO),
                                {"n": 60})
        assert profile.total_weight() == 1  # entry pseudo-edge only
        trained = compile_source(LOOP, OptimizerOptions(
            Scheme.LO, profile=profile))
        assert trained.total_stats().lospre_cuts == 0
        bare = compile_source(LOOP, OptimizerOptions(scheme=Scheme.LO))
        assert trained.run({"n": 5}).counters.effective_checks() \
            == bare.run({"n": 5}).counters.effective_checks()

    @pytest.mark.parametrize("kind", [CheckKind.PRX, CheckKind.INX])
    def test_both_kinds_compile_and_agree_on_output(self, kind):
        options = OptimizerOptions(scheme=Scheme.LO, kind=kind)
        profile = train_profile(LOOP, options, {"n": 5})
        program = compile_source(LOOP, OptimizerOptions(
            Scheme.LO, kind, options.implication, profile=profile))
        lls = compile_source(LOOP, OptimizerOptions(scheme=Scheme.LLS,
                                                    kind=kind))
        assert program.run({"n": 5}).output == lls.run({"n": 5}).output

    def test_engine_parity_under_speculation(self):
        # the cut placement must count identically on all engines
        program = compile_source(DIAMOND, OptimizerOptions(
            Scheme.LO, profile=lying_diamond_profile()))
        assert program.total_stats().lospre_cuts > 0
        counts = {program.run({"n": 5}).counters.effective_checks()}
        for engine in ("compiled", "specialized"):
            counts.add(program.run_compiled(
                {"n": 5}, engine=engine).counters.effective_checks())
        assert len(counts) == 1
