"""Zero- and single-trip loops across every scheme.

A hoisted check is only sound when it is guarded by the loop's
"executes at least once" condition: for a loop that never runs, no
hoisted check may fire -- even when the body contains an access that
would be wildly out of bounds.  These tests pin that down for every
(Scheme x CheckKind) point, for both compile-time and symbolic
zero-trip counts, and check the single-trip boundary behaves like the
naive program.
"""

import pytest

from repro.checks import OptimizerOptions
from repro.errors import RangeTrap

from ..conftest import ALL_KINDS, ALL_SCHEMES, compile_and_run, run_baseline

POINTS = [(scheme, kind) for scheme in ALL_SCHEMES for kind in ALL_KINDS]
IDS = ["%s-%s" % (kind.value, scheme.value) for scheme, kind in POINTS]


ZERO_TRIP_CONST = """
program p
  integer :: i, s
  real :: a(5)
  s = 0
  do i = 5, 1
    a(i + 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

ZERO_TRIP_SYMBOLIC = """
program p
  input integer :: n = 0
  integer :: i, s
  real :: a(5)
  s = 0
  do i = 1, n
    a(i + 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

ZERO_TRIP_NEGATIVE_STEP = """
program p
  input integer :: n = 0
  integer :: i, s
  real :: a(5)
  s = 0
  do i = n, 1, -1
    a(i - 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

SINGLE_TRIP = """
program p
  input integer :: n = 1
  integer :: i
  real :: a(5)
  do i = 1, n
    a(i) = 2.0
  end do
  print a(1)
end program
"""

SINGLE_TRIP_TRAPPING = """
program p
  input integer :: n = 1
  integer :: i
  real :: a(5)
  do i = 1, n
    a(i + 7) = 2.0
  end do
  print 1
end program
"""


class TestZeroTrip:
    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    @pytest.mark.parametrize("source", [ZERO_TRIP_CONST, ZERO_TRIP_SYMBOLIC,
                                        ZERO_TRIP_NEGATIVE_STEP],
                             ids=["const", "symbolic", "negstep"])
    def test_no_hoisted_check_fires(self, source, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        baseline = run_baseline(source)
        optimized = compile_and_run(source, options)
        assert optimized.output == baseline.output == [0]
        # the body never ran: the naive program performs zero checks,
        # so any hoisted check must have been stopped by its guard
        assert baseline.counters.checks == 0
        assert optimized.counters.effective_checks() == 0


class TestSingleTrip:
    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    def test_single_trip_runs_clean(self, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        baseline = run_baseline(SINGLE_TRIP)
        optimized = compile_and_run(SINGLE_TRIP, options)
        assert optimized.output == baseline.output
        assert optimized.counters.effective_checks() <= \
            baseline.counters.checks

    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    def test_single_trip_oob_still_traps(self, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        with pytest.raises(RangeTrap):
            run_baseline(SINGLE_TRIP_TRAPPING)
        with pytest.raises(RangeTrap):
            compile_and_run(SINGLE_TRIP_TRAPPING, options)
