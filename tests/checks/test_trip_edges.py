"""Zero- and single-trip loops across every scheme.

A hoisted check is only sound when it is guarded by the loop's
"executes at least once" condition: for a loop that never runs, no
hoisted check may fire -- even when the body contains an access that
would be wildly out of bounds.  These tests pin that down for every
(Scheme x CheckKind) point, for both compile-time and symbolic
zero-trip counts, and check the single-trip boundary behaves like the
naive program.
"""

import pytest

from repro.checks import OptimizerOptions, Scheme
from repro.errors import RangeTrap

from ..conftest import ALL_KINDS, ALL_SCHEMES, compile_and_run, run_baseline

POINTS = [(scheme, kind) for scheme in ALL_SCHEMES for kind in ALL_KINDS]
IDS = ["%s-%s" % (kind.value, scheme.value) for scheme, kind in POINTS]


ZERO_TRIP_CONST = """
program p
  integer :: i, s
  real :: a(5)
  s = 0
  do i = 5, 1
    a(i + 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

ZERO_TRIP_SYMBOLIC = """
program p
  input integer :: n = 0
  integer :: i, s
  real :: a(5)
  s = 0
  do i = 1, n
    a(i + 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

ZERO_TRIP_NEGATIVE_STEP = """
program p
  input integer :: n = 0
  integer :: i, s
  real :: a(5)
  s = 0
  do i = n, 1, -1
    a(i - 100) = 1.0
    s = s + 1
  end do
  print s
end program
"""

SINGLE_TRIP = """
program p
  input integer :: n = 1
  integer :: i
  real :: a(5)
  do i = 1, n
    a(i) = 2.0
  end do
  print a(1)
end program
"""

SINGLE_TRIP_TRAPPING = """
program p
  input integer :: n = 1
  integer :: i
  real :: a(5)
  do i = 1, n
    a(i + 7) = 2.0
  end do
  print 1
end program
"""


class TestZeroTrip:
    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    @pytest.mark.parametrize("source", [ZERO_TRIP_CONST, ZERO_TRIP_SYMBOLIC,
                                        ZERO_TRIP_NEGATIVE_STEP],
                             ids=["const", "symbolic", "negstep"])
    def test_no_hoisted_check_fires(self, source, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        baseline = run_baseline(source)
        optimized = compile_and_run(source, options)
        assert optimized.output == baseline.output == [0]
        # the body never ran: the naive program performs zero checks,
        # so any hoisted check must have been stopped by its guard
        assert baseline.counters.checks == 0
        assert optimized.counters.effective_checks() == 0


class TestSingleTrip:
    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    def test_single_trip_runs_clean(self, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        baseline = run_baseline(SINGLE_TRIP)
        optimized = compile_and_run(SINGLE_TRIP, options)
        assert optimized.output == baseline.output
        assert optimized.counters.effective_checks() <= \
            baseline.counters.checks

    @pytest.mark.parametrize("scheme,kind", POINTS, ids=IDS)
    def test_single_trip_oob_still_traps(self, scheme, kind):
        options = OptimizerOptions(scheme=scheme, kind=kind)
        with pytest.raises(RangeTrap):
            run_baseline(SINGLE_TRIP_TRAPPING)
        with pytest.raises(RangeTrap):
            compile_and_run(SINGLE_TRIP_TRAPPING, options)


ENGINE_SCHEMES = [Scheme.NI, Scheme.LLS, Scheme.ALL]

ZERO_EXTENT_DECL = """
program p
  input integer :: n = 4
  integer :: i
  real :: a(5:2), b(10)
  do i = 1, n
    b(i) = real(i) * 2.0
  end do
  print b(n)
end program
"""

ZERO_EXTENT_ACCESS = """
program p
  integer :: i
  real :: a(5:2)
  do i = 5, 2
    a(i) = 1.0
  end do
  a(3) = 1.0
  print 1
end program
"""


class TestEngineTripEdges:
    """The back-end engines (including the tier-2 vectorizer) against
    the same zero/single-trip fixtures: a kernel's closed-form counter
    charging and zero-trip early return must be indistinguishable from
    the interpreter's per-iteration accounting."""

    @pytest.mark.parametrize("scheme", ENGINE_SCHEMES,
                             ids=[s.value for s in ENGINE_SCHEMES])
    @pytest.mark.parametrize("source", [ZERO_TRIP_CONST,
                                        ZERO_TRIP_SYMBOLIC,
                                        ZERO_TRIP_NEGATIVE_STEP,
                                        SINGLE_TRIP],
                             ids=["const", "symbolic", "negstep",
                                  "single"])
    def test_clean_fixtures_tri_engine_parity(self, source, scheme):
        from ..backend.test_specialized import tri_parity

        tri_parity(source, options=OptimizerOptions(scheme=scheme))

    @pytest.mark.parametrize("scheme", ENGINE_SCHEMES,
                             ids=[s.value for s in ENGINE_SCHEMES])
    def test_single_trip_trap_tri_engine_parity(self, scheme):
        import pickle

        from repro.backend import compile_to_python, compile_to_specialized
        from repro.checks import optimize_module
        from repro.interp import Machine
        from repro.ssa import destruct_ssa

        from ..conftest import lower_ssa

        module = lower_ssa(SINGLE_TRIP_TRAPPING)
        optimize_module(module, OptimizerOptions(scheme=scheme))
        clone = pickle.loads(pickle.dumps(module))
        machine = Machine(clone, {"n": 1})
        with pytest.raises(RangeTrap):
            machine.run()
        threaded_mod = pickle.loads(pickle.dumps(module))
        for function in threaded_mod:
            destruct_ssa(function)
        with pytest.raises(RangeTrap) as threaded_info:
            compile_to_python(threaded_mod).run({"n": 1})
        spec = compile_to_specialized(pickle.loads(pickle.dumps(module)))
        with pytest.raises(RangeTrap) as spec_info:
            spec.run({"n": 1})
        assert list(spec_info.value.runtime.output) == \
            list(machine.output) == \
            list(threaded_info.value.runtime.output)
        assert spec_info.value.runtime.counters.traps == \
            machine.counters.traps == 1


class TestZeroExtentArrays:
    """Arrays declared with lo > hi have extent zero: every access is
    out of bounds and every engine must agree on that."""

    def test_zero_extent_declaration_is_harmless(self):
        from ..backend.test_specialized import tri_parity

        tri_parity(ZERO_EXTENT_DECL, {"n": 4})

    @pytest.mark.parametrize("scheme", ENGINE_SCHEMES,
                             ids=[s.value for s in ENGINE_SCHEMES])
    def test_zero_extent_access_traps_in_every_engine(self, scheme):
        import pickle

        from repro.backend import compile_to_python, compile_to_specialized
        from repro.checks import optimize_module
        from repro.interp import Machine
        from repro.ssa import destruct_ssa

        from ..conftest import lower_ssa

        module = lower_ssa(ZERO_EXTENT_ACCESS)
        optimize_module(module, OptimizerOptions(scheme=scheme))
        clone = pickle.loads(pickle.dumps(module))
        machine = Machine(clone, None)
        with pytest.raises(RangeTrap):
            machine.run()
        threaded_mod = pickle.loads(pickle.dumps(module))
        for function in threaded_mod:
            destruct_ssa(function)
        with pytest.raises(RangeTrap):
            compile_to_python(threaded_mod).run(None)
        spec = compile_to_specialized(pickle.loads(pickle.dumps(module)))
        with pytest.raises(RangeTrap) as info:
            spec.run(None)
        assert list(info.value.runtime.output) == list(machine.output)
