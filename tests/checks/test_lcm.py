"""Tests for PRE-based check placement (SE and LNI)."""

from repro.checks import (CheckAnalysis, CheckImplicationGraph,
                          OptimizerOptions, Scheme, latest_insertions,
                          optimize_module, safe_earliest_insertions,
                          universe_from_function)
from repro.ir import Check

from ..conftest import compile_and_run, lower_ssa, run_baseline

PARTIAL = """
program partial
  input integer :: n = 20, c = 1
  integer :: i
  real :: a(100), b(100)
  do i = 1, n
    if (mod(i, 2) == 0) then
      a(i) = 1.0
    end if
    b(i) = 2.0
  end do
  print b(1)
end program
"""


def insertion_sets(source, earliest=True):
    module = lower_ssa(source)
    main = module.main
    universe = universe_from_function(main)
    cig = CheckImplicationGraph(universe)
    analysis = CheckAnalysis(main, universe, cig)
    if earliest:
        return safe_earliest_insertions(analysis), main
    return latest_insertions(analysis), main


class TestInsertionSets:
    def test_se_finds_insertion_points(self):
        insertions, _ = insertion_sets(PARTIAL, earliest=True)
        assert insertions  # something is partially redundant

    def test_lni_finds_insertion_points(self):
        insertions, _ = insertion_sets(PARTIAL, earliest=False)
        assert insertions

    def test_straightline_has_no_insertions(self):
        insertions, _ = insertion_sets("""
program p
  input integer :: n = 1
  real :: a(10)
  a(n) = 1.0
end program
""", earliest=True)
        # everything is fully available/anticipatable at its only site;
        # SE may propose the entry placement of the entry-anticipatable
        # checks, which is the same point -- allow empty or entry-only
        for (pred, succ), facts in insertions.items():
            assert pred is None  # only the virtual entry edge

    def test_lni_is_lazier_than_se(self):
        se, main = insertion_sets(PARTIAL, earliest=True)
        lni, _ = insertion_sets(PARTIAL, earliest=False)
        # LNI inserts no earlier (no fewer facts overall, placed lower)
        assert sum(len(v) for v in lni.values()) <= \
            sum(len(v) for v in se.values()) + 4


class TestDynamicEffects:
    def test_se_beats_ni_on_partial_redundancy(self):
        ni = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.NI))
        se = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.SE))
        assert se.counters.checks < ni.counters.checks

    def test_lni_beats_ni_on_partial_redundancy(self):
        ni = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.NI))
        lni = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.LNI))
        assert lni.counters.checks < ni.counters.checks

    def test_se_at_least_as_good_as_lni(self):
        se = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.SE))
        lni = compile_and_run(PARTIAL, OptimizerOptions(scheme=Scheme.LNI))
        assert se.counters.checks <= lni.counters.checks

    def test_output_preserved(self):
        baseline = run_baseline(PARTIAL)
        for scheme in (Scheme.SE, Scheme.LNI):
            machine = compile_and_run(PARTIAL,
                                      OptimizerOptions(scheme=scheme))
            assert machine.output == baseline.output

    def test_figure5_unprofitability(self):
        """Figure 5: SE can add checks on the else path."""
        source = """
program fig5
  input integer :: i = 3, c = 0
  integer :: a(1:10)
  if (c > 0) then
    a(i) = 1
  else
    a(i + 4) = 2
  end if
  print a(5)
end program
"""
        baseline = run_baseline(source, {"i": 3, "c": 0})
        se = compile_and_run(source, OptimizerOptions(scheme=Scheme.SE),
                             {"i": 3, "c": 0})
        # on the else path SE performs (i <= 10)-class work that the
        # naive program skipped: not fewer checks on this path
        assert se.counters.checks >= 2
        assert se.output == baseline.output
