"""Structured program fuzzing for optimizer soundness.

Generates random mini-Fortran programs -- nested counted loops, while
loops, if/else, exit/cycle, one- and two-dimensional accesses with
affine subscripts, subroutine calls -- and asserts that every optimizer
configuration preserves observable behavior: the trap/no-trap outcome
and the printed output.

This complements the template-based cases in test_soundness.py with
much richer control flow.  Programs are built so they always terminate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.checks import (CheckKind, ImplicationMode, OptimizerOptions,
                          Scheme, optimize_module)
from repro.errors import RangeTrap
from repro.interp import Machine

from ..conftest import lower_ssa


class _Gen:
    """Emits statements of a random program."""

    def __init__(self, draw) -> None:
        self.draw = draw
        self.lines = []
        self.loop_depth = 0
        self.loop_vars = ["i", "j"]
        self.in_scope = []

    def emit(self, text: str) -> None:
        self.lines.append("  " * (self.loop_depth + 1) + text)

    def subscript(self) -> str:
        """A subscript expression usually in bounds, sometimes not."""
        choices = ["1", "2", "n"]
        choices.extend(self.in_scope)
        base = self.draw(st.sampled_from(choices))
        offset = self.draw(st.integers(-1, 2))
        scale = self.draw(st.sampled_from([1, 1, 1, 2]))
        expr = base if scale == 1 else "%d * %s" % (scale, base)
        if offset:
            expr = "%s + %d" % (expr, offset) if offset > 0 \
                else "%s - %d" % (expr, -offset)
        return expr

    def array_stmt(self) -> None:
        array = self.draw(st.sampled_from(["a", "b"]))
        if array == "b":
            self.emit("b(%s, %s) = b(%s, %s) + 1.0"
                      % (self.subscript(), self.subscript(),
                         self.subscript(), self.subscript()))
        else:
            self.emit("a(%s) = a(%s) * 0.5 + s"
                      % (self.subscript(), self.subscript()))

    def scalar_stmt(self) -> None:
        self.emit("s = s + %d.0" % self.draw(st.integers(0, 3)))

    def if_stmt(self, depth: int) -> None:
        cond = self.draw(st.sampled_from(
            ["s > 2.0", "mod(k, 2) == 0", "n > 4"]))
        self.emit("if (%s) then" % cond)
        self.loop_depth += 1
        self.block(depth - 1, min_stmts=1)
        self.loop_depth -= 1
        if self.draw(st.booleans()):
            self.emit("else")
            self.loop_depth += 1
            self.block(depth - 1, min_stmts=1)
            self.loop_depth -= 1
        self.emit("end if")

    def do_stmt(self, depth: int) -> None:
        if self.loop_depth >= 2 or not self.loop_vars:
            self.array_stmt()
            return
        var = self.loop_vars.pop(0)
        start = self.draw(st.integers(1, 3))
        stop = self.draw(st.sampled_from(["n", "6", "n - 1"]))
        step = self.draw(st.sampled_from(["", "", ", 2"]))
        self.emit("do %s = %d, %s%s" % (var, start, stop, step))
        self.loop_depth += 1
        self.in_scope.append(var)
        self.block(depth - 1, min_stmts=1)
        if self.draw(st.integers(0, 3)) == 0:
            self.emit("if (%s > 4) then" % var)
            self.emit("  %s" % self.draw(st.sampled_from(["exit", "cycle"])))
            self.emit("end if")
        self.in_scope.pop()
        self.loop_depth -= 1
        self.emit("end do")
        self.loop_vars.insert(0, var)

    def block(self, depth: int, min_stmts: int = 1) -> None:
        count = self.draw(st.integers(min_stmts, 3))
        for _ in range(count):
            kind = self.draw(st.integers(0, 5))
            if kind <= 1:
                self.array_stmt()
            elif kind == 2:
                self.scalar_stmt()
            elif kind == 3 and depth > 0:
                self.if_stmt(depth)
            elif kind == 4 and depth > 0:
                self.do_stmt(depth)
            else:
                self.emit("k = k + 1")


@st.composite
def random_programs(draw):
    gen = _Gen(draw)
    gen.block(depth=3, min_stmts=2)
    body = "\n".join(gen.lines)
    asize = draw(st.integers(6, 20))
    bsize = draw(st.integers(6, 14))
    source = (
        "program fuzz\n"
        "  input integer :: n = 5\n"
        "  integer :: i, j, k\n"
        "  real :: s\n"
        "  real :: a(%d), b(%d, %d)\n"
        "  k = 0\n"
        "  s = 1.0\n"
        "%s\n"
        "  print s\n"
        "  print k\n"
        "end program\n" % (asize, bsize, bsize, body))
    inputs = {"n": draw(st.integers(0, 8))}
    scheme = draw(st.sampled_from(list(Scheme)))
    kind = draw(st.sampled_from(list(CheckKind)))
    mode = draw(st.sampled_from(list(ImplicationMode)))
    return source, inputs, OptimizerOptions(scheme=scheme, kind=kind,
                                            implication=mode)


def observe(source, options, inputs):
    module = lower_ssa(source)
    if options is not None:
        optimize_module(module, options)
    machine = Machine(module, inputs, max_steps=500_000)
    try:
        machine.run()
    except RangeTrap:
        return ("trap",)
    return ("ok", machine.output)


def observe_compiled(source, options, inputs):
    """Run via the Python back-end (differential engine check)."""
    from repro.backend import compile_to_python
    from repro.ssa import destruct_ssa

    module = lower_ssa(source)
    if options is not None:
        optimize_module(module, options)
    for function in module:
        destruct_ssa(function)
    compiled = compile_to_python(module)
    try:
        runtime = compiled.run(inputs)
    except RangeTrap:
        return ("trap",)
    return ("ok", runtime.output)


class TestFuzz:
    @settings(max_examples=80, deadline=None)
    @given(random_programs())
    def test_behavior_preserved(self, case):
        source, inputs, options = case
        expected = observe(source, None, inputs)
        actual = observe(source, options, inputs)
        assert actual == expected, source

    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_engines_agree(self, case):
        """Differential testing: interpreter vs Python back-end."""
        source, inputs, options = case
        interp = observe(source, options, inputs)
        compiled = observe_compiled(source, options, inputs)
        assert interp == compiled, source

    @settings(max_examples=25, deadline=None)
    @given(random_programs())
    def test_optimizers_never_add_checks_dynamically_vs_worst(self, case):
        """No configuration executes more than a small constant number
        of extra checks over naive checking (the inserted Cond-checks
        are the only possible additions)."""
        source, inputs, options = case
        baseline = lower_ssa(source)
        base_machine = Machine(baseline, inputs, max_steps=500_000)
        try:
            base_machine.run()
        except RangeTrap:
            return  # covered by the behavior-preservation test
        module = lower_ssa(source)
        optimize_module(module, options)
        machine = Machine(module, inputs, max_steps=500_000)
        machine.run()
        assert machine.counters.checks <= \
            base_machine.counters.checks + 24
