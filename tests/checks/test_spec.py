"""Tests for the SPEC scheme: speculative convex-hull preheader
guards with a fully checked fall-back clone (loop versioning).

The contract under test:

* the guarded fast path executes **zero** per-iteration checks for
  covered families;
* a guard miss dispatches to the slow-path clone, whose behavior is
  exactly the NI program's (same traps, same output);
* zero-trip loops never evaluate the envelope guard (``spec_guards``
  stays 0) and never trap;
* families the envelope cannot cover degrade to LLS placement.
"""

import pytest

from repro.checks.config import OptimizerOptions, Scheme
from repro.errors import RangeTrap
from repro.interp import Machine
from repro.pipeline.driver import compile_source

SPEC = OptimizerOptions(scheme=Scheme.SPEC)
LLS = OptimizerOptions(scheme=Scheme.LLS)

HULL = """
program p
  input integer :: n = 50
  integer :: i
  integer :: a(100)
  do i = 1, n
    a(i) = i
    a(i+1) = 2
  end do
  print a(3)
end program
"""


def run_counters(source, options, inputs):
    """Counters + output + trap flag, trap-tolerant."""
    program = compile_source(source, options)
    machine = Machine(program.module, inputs)
    trapped = False
    try:
        machine.run()
    except RangeTrap:
        trapped = True
    return machine.counters, list(machine.output), trapped


class TestFastPath:
    def test_zero_checks_on_the_fast_path(self):
        counters, output, trapped = run_counters(HULL, SPEC, {"n": 50})
        assert not trapped
        assert counters.checks == 0
        assert counters.spec_guards == 1
        assert counters.spec_misses == 0

    def test_output_matches_baseline(self):
        baseline = compile_source(HULL, optimize=False)
        optimized = compile_source(HULL, SPEC)
        assert optimized.run({"n": 50}).output == \
            baseline.run({"n": 50}).output

    def test_envelope_exactly_at_declared_bound(self):
        # i+1 runs to n+1 = 100 = the declared upper bound: the
        # envelope holds with zero slack and the fast path is taken
        counters, _, trapped = run_counters(HULL, SPEC, {"n": 99})
        assert not trapped
        assert counters.checks == 0
        assert counters.spec_guards == 1
        assert counters.spec_misses == 0


class TestZeroTrip:
    @pytest.mark.parametrize("n", [0, -7])
    def test_guard_never_fires(self, n):
        counters, output, trapped = run_counters(HULL, SPEC, {"n": n})
        assert not trapped
        # the trip pre-guard short-circuits: the envelope is never
        # evaluated, so neither spec counter moves
        assert counters.spec_guards == 0
        assert counters.spec_misses == 0
        assert counters.checks == 0
        assert output == [0]


class TestSlowPath:
    def test_guard_miss_enters_checked_clone(self):
        # n = 100 drives a(i+1) to a(101): the envelope guard misses
        # and the slow path traps exactly where naive checking does
        counters, _, trapped = run_counters(HULL, SPEC, {"n": 100})
        assert trapped
        assert counters.spec_guards == 1
        assert counters.spec_misses == 1
        # the clone really executed its checks before trapping
        assert counters.checks > 0

    def test_trap_parity_with_baseline(self):
        for n in (100, 150):
            _, base_out, base_trap = run_counters(
                HULL, OptimizerOptions(scheme=Scheme.NI), {"n": n})
            _, spec_out, spec_trap = run_counters(HULL, SPEC, {"n": n})
            assert spec_trap == base_trap
            assert spec_out == base_out


class TestNegativeOffset:
    NEG = """
program p
  input integer :: n = 100
  real :: a(100)
  integer :: i
  do i = 3, n
    a(i-2) = 1.0
  end do
  print a(1)
end program
"""

    def test_lower_family_covered(self):
        # the lower-bound family's hull member is a(i-2) at i = 3,
        # i.e. subscript 1 -- exactly the declared lower bound
        counters, _, trapped = run_counters(self.NEG, SPEC, {"n": 102})
        assert not trapped
        assert counters.checks == 0
        assert counters.spec_guards == 1
        assert counters.spec_misses == 0

    def test_overflow_still_traps(self):
        counters, _, trapped = run_counters(self.NEG, SPEC, {"n": 103})
        assert trapped
        assert counters.spec_misses == 1


class TestDegradation:
    UNPROVABLE = """
program p
  input integer :: n = 10
  real :: a(100)
  integer :: i, j
  j = 1
  do i = 1, n
    a(j) = 1.0
    j = j + 2
  end do
  print a(1)
end program
"""

    def test_uncoverable_family_degrades_to_lls(self):
        # the subscript walks a secondary induction variable the
        # envelope cannot express; SPEC must not version the loop and
        # must fall back to exactly LLS's placement
        spec_counters, spec_out, _ = run_counters(
            self.UNPROVABLE, SPEC, {"n": 10})
        lls_counters, lls_out, _ = run_counters(
            self.UNPROVABLE, LLS, {"n": 10})
        assert spec_out == lls_out
        assert spec_counters.spec_guards == 0
        assert spec_counters.effective_checks() == \
            lls_counters.effective_checks()


class TestEngineParity:
    @pytest.mark.parametrize("n", [50, 99, 100, 0])
    def test_all_three_engines_agree(self, n):
        reference = None
        for engine in ("interp", "compiled", "specialized"):
            program = compile_source(HULL, SPEC)
            trapped = False
            try:
                if engine == "interp":
                    result = program.run({"n": n})
                else:
                    result = program.run_compiled({"n": n}, engine=engine)
            except RangeTrap:
                trapped = True
                result = None
            row = (trapped,
                   None if result is None else tuple(result.output),
                   None if result is None else (
                       result.counters.checks,
                       result.counters.spec_guards,
                       result.counters.spec_misses))
            if reference is None:
                reference = (engine, row)
            else:
                assert row == reference[1], \
                    "%s disagrees with %s" % (engine, reference[0])


class TestRegistryWins:
    @pytest.mark.parametrize("name", ["vortex", "linpackd"])
    def test_spec_never_worse_than_lls(self, name):
        # acceptance: dynamic effective checks under SPEC <= LLS on
        # registry programs (the envelope guard subsumes the per-family
        # preheader checks it replaces)
        from repro.benchsuite.registry import get_program
        from repro.pipeline.stats import measure_baseline, measure_scheme

        program = get_program(name)
        inputs = program.test_inputs
        baseline = measure_baseline(program.name, program.source, inputs)
        rows = {}
        for scheme in (Scheme.SPEC, Scheme.LLS):
            cell = measure_scheme(
                program.name, program.source,
                OptimizerOptions(scheme=scheme),
                baseline.dynamic_checks, inputs)
            rows[scheme] = cell.dynamic_checks
        assert rows[Scheme.SPEC] <= rows[Scheme.LLS]


class TestBenchParityGate:
    def test_registry_program_counts_match_under_spec(self):
        # the bench harness's parity gate now includes the spec
        # counters; a drift between engines must flip counts_match
        from repro.benchsuite.registry import get_program
        from repro.benchsuite.runner import run_bench

        result = run_bench([get_program("vortex")],
                           engines=("interp", "compiled", "specialized"),
                           small=True, repeats=1, options=SPEC)
        assert result.counts_ok()
        row = result.programs[0]
        assert row.mismatches == []
        assert row.engines["interp"].counters["spec_guards"] > 0


class TestStats:
    def test_speculated_counts_versioned_loops(self):
        from repro.checks.optimizer import optimize_module
        from repro.pipeline.driver import run_frontend

        module = run_frontend(HULL)  # parse + lower + SSA
        stats = optimize_module(module, SPEC)
        assert sum(s.speculated for s in stats.values()) == 1
