"""Replay every persisted fuzz-corpus entry through the oracle.

``tests/fuzz_corpus/`` holds minimized programs that once violated the
safety oracle (``! kind:``/``! config:`` headers record how).  Each
entry must now pass the oracle -- baseline invariants always, plus the
originally-failing optimizer configuration when one is recorded.
Campaigns append to the corpus via ``repro fuzz --corpus``.
"""

import os

import pytest

from repro.fuzz import Oracle, config_by_label, read_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "fuzz_corpus")
ENTRIES = read_corpus(CORPUS_DIR)


def _configs_for(entry):
    table = config_by_label()
    if entry["config"] in table:
        return [table[entry["config"]]]
    return []  # a baseline failure: the baseline always runs


def test_corpus_exists():
    assert ENTRIES, "the regression corpus should never be empty"


@pytest.mark.parametrize(
    "entry", ENTRIES,
    ids=[os.path.basename(e["path"]) for e in ENTRIES])
def test_corpus_entry_passes(entry):
    oracle = Oracle(configs=_configs_for(entry))
    seed = int(entry["seed"]) if entry["seed"].isdigit() else None
    failure = oracle.check(entry["source"], seed=seed)
    assert failure is None, failure.describe()
