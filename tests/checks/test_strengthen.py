"""Tests for check strengthening (CS)."""

from repro.checks import (CanonicalCheck, CheckAnalysis,
                          CheckImplicationGraph, ImplicationStore,
                          OptimizerOptions, Scheme, optimize_module,
                          strengthen_checks, universe_from_function)
from repro.ir import Check
from repro.ir.verify import verify_function

from ..conftest import compile_and_run, lower_ssa, run_baseline


def strengthen(source):
    module = lower_ssa(source)
    main = module.main
    universe = universe_from_function(main)
    cig = CheckImplicationGraph(universe)
    analysis = CheckAnalysis(main, universe, cig)
    replaced = strengthen_checks(analysis)
    return main, replaced


FIGURE1 = """
program fig1
  input integer :: n = 4
  integer :: a(5:10)
  a(2 * n) = 0
  a(2 * n - 1) = 1
end program
"""


class TestStrengthening:
    def test_figure1_replacement(self):
        main, replaced = strengthen(FIGURE1)
        assert replaced == 1
        # the first lower check (-2n <= -5) became (-2n <= -6)
        lowers = [CanonicalCheck.of(c) for c in main.instructions()
                  if isinstance(c, Check) and c.kind == "lower"]
        assert lowers[0].bound == -6

    def test_no_replacement_when_already_strongest(self):
        main, replaced = strengthen("""
program p
  input integer :: n = 4
  integer :: a(5:10)
  a(2 * n - 1) = 1
  a(2 * n) = 0
end program
""")
        # reversed order: the strong lower check comes first already
        assert replaced == 1  # now the UPPER check strengthens instead

    def test_def_blocks_strengthening(self):
        main, replaced = strengthen("""
program p
  integer :: k
  real :: a(10)
  k = 5
  a(k) = 1.0
  k = k + 1
  a(k) = 2.0
end program
""")
        # the second k is a different SSA value: families differ, no
        # cross-strengthening is possible
        assert replaced == 0

    def test_branch_blocks_strengthening(self):
        main, replaced = strengthen("""
program p
  input integer :: n = 3, c = 1
  real :: a(10)
  a(n) = 1.0
  if (c > 0) then
    a(n - 1) = 2.0
  end if
end program
""")
        # (-n <= -2) is not anticipatable at the first check (one arm
        # does not perform it)
        assert replaced == 0

    def test_dynamic_improvement_over_ni(self):
        source = """
program p
  input integer :: n = 30
  integer :: i
  real :: x(100)
  do i = 2, n
    x(i) = x(i) + x(i - 1)
  end do
  print x(2)
end program
"""
        ni = compile_and_run(source, OptimizerOptions(scheme=Scheme.NI))
        cs = compile_and_run(source, OptimizerOptions(scheme=Scheme.CS))
        assert cs.counters.checks < ni.counters.checks

    def test_strengthened_check_traps_earlier_but_equivalently(self):
        # strengthening may trap earlier, never differently
        source = """
program p
  input integer :: n = 1
  integer :: a(5:10)
  a(2 * n) = 0
  a(2 * n - 1) = 1
end program
"""
        from repro.errors import RangeTrap
        import pytest
        for optimize in (False, True):
            module = lower_ssa(source)
            if optimize:
                optimize_module(module, OptimizerOptions(scheme=Scheme.CS))
            from repro.interp import Machine
            with pytest.raises(RangeTrap):
                Machine(module, {"n": 1}).run()


CROSS_FAMILY = """
program p
  input integer :: n = 3, m = 5
  real :: a(10), b(10)
  a(n) = 1.0
  b(m) = 2.0
end program
"""


class TestCrossFamilyOperands:
    """Strengthening across families must rebuild the replacement's
    operand map for the *stronger* check's symbols -- reusing the
    replaced check's operands used to raise "missing operands" (or,
    worse, would silently test the wrong variables)."""

    def strengthen_with_edge(self, weight):
        module = lower_ssa(CROSS_FAMILY)
        main = module.main
        universe = universe_from_function(main)
        uppers = [CanonicalCheck.of(inst) for inst in main.instructions()
                  if isinstance(inst, Check) and inst.kind == "upper"]
        n_expr, m_expr = uppers[0].linexpr, uppers[1].linexpr
        assert n_expr.symbols() != m_expr.symbols()
        store = ImplicationStore()
        # (m <= b) implies (n <= b + weight): externally-known relation
        store.add_edge(m_expr, n_expr, weight)
        cig = CheckImplicationGraph(universe, store)
        analysis = CheckAnalysis(main, universe, cig)
        replaced = strengthen_checks(analysis)
        return main, replaced, m_expr

    def test_replacement_operands_match_its_linexpr(self):
        main, replaced, m_expr = self.strengthen_with_edge(-2)
        assert replaced == 1
        uppers = [inst for inst in main.instructions()
                  if isinstance(inst, Check) and inst.kind == "upper"]
        # the n-check became the (stronger, cross-family) m-check
        assert uppers[0].linexpr == m_expr
        assert set(uppers[0].operands) == set(m_expr.symbols())
        for sym, var in uppers[0].operands.items():
            assert var.name == sym
        verify_function(main)

    def test_no_replacement_without_implication(self):
        # weight +2: (m <= 10) only implies (n <= 12), weaker than the
        # n-check's own bound -- nothing to strengthen with
        _, replaced, _ = self.strengthen_with_edge(2)
        assert replaced == 0
