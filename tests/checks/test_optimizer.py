"""End-to-end tests for the range-check optimizer (all schemes)."""

import pytest

from repro.checks import (CheckKind, ImplicationMode, OptimizerOptions,
                          Scheme, count_checks, optimize_module)
from repro.ir import Check, Trap, verify_module

from ..conftest import (ALL_KINDS, ALL_MODES, ALL_SCHEMES, compile_and_run,
                        lower_ssa, run_baseline)


class TestSchemeBasics:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_output_preserved(self, loop_program, scheme):
        baseline = run_baseline(loop_program, {"n": 9})
        optimized = compile_and_run(loop_program,
                                    OptimizerOptions(scheme=scheme),
                                    {"n": 9})
        assert optimized.output == baseline.output

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_never_more_static_checks_than_baseline_plus_preheaders(
            self, loop_program, scheme):
        module = lower_ssa(loop_program)
        before = sum(count_checks(f) for f in module)
        optimize_module(module, OptimizerOptions(scheme=scheme))
        after = sum(count_checks(f) for f in module)
        assert after <= before + 8  # inserted cond-checks are bounded

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_verifies_after_optimization(self, loop_program, scheme, kind):
        module = lower_ssa(loop_program)
        optimize_module(module, OptimizerOptions(scheme=scheme, kind=kind))
        verify_module(module)

    def test_ni_eliminates_redundant_checks(self, loop_program):
        baseline = run_baseline(loop_program, {"n": 20})
        optimized = compile_and_run(loop_program,
                                    OptimizerOptions(scheme=Scheme.NI),
                                    {"n": 20})
        assert optimized.counters.checks < baseline.counters.checks

    def test_lls_hoists_loop_checks(self, loop_program):
        baseline = run_baseline(loop_program, {"n": 50})
        optimized = compile_and_run(loop_program,
                                    OptimizerOptions(scheme=Scheme.LLS),
                                    {"n": 50})
        # per-iteration checks are gone: only preheader cond-checks and
        # post-loop checks remain
        assert optimized.counters.checks <= 6
        assert baseline.counters.checks >= 200


class TestSchemeOrdering:
    """The paper's qualitative ordering between schemes."""

    SOURCE = """
program ordering
  input integer :: n = 30
  integer :: i
  real :: a(100), b(100)
  do i = 2, n
    a(i) = a(i) + b(i)
    b(i - 1) = a(i - 1) * 0.5
  end do
  print a(n)
end program
"""

    def dynamic_checks(self, scheme):
        machine = compile_and_run(self.SOURCE,
                                  OptimizerOptions(scheme=scheme))
        return machine.counters.checks

    def test_cs_not_worse_than_ni(self):
        assert self.dynamic_checks(Scheme.CS) <= \
            self.dynamic_checks(Scheme.NI)

    def test_se_not_worse_than_lni(self):
        assert self.dynamic_checks(Scheme.SE) <= \
            self.dynamic_checks(Scheme.LNI)

    def test_lls_not_worse_than_li(self):
        assert self.dynamic_checks(Scheme.LLS) <= \
            self.dynamic_checks(Scheme.LI)

    def test_li_not_worse_than_ni(self):
        assert self.dynamic_checks(Scheme.LI) <= \
            self.dynamic_checks(Scheme.NI)

    def test_lls_is_dramatic(self):
        baseline = run_baseline(self.SOURCE)
        lls = self.dynamic_checks(Scheme.LLS)
        assert lls < baseline.counters.checks * 0.1


class TestCompileTimeChecks:
    def test_constant_true_checks_removed(self):
        module = lower_ssa("""
program p
  real :: a(10)
  a(3) = 1.0
end program
""")
        optimize_module(module, OptimizerOptions(scheme=Scheme.NI))
        assert count_checks(module.main) == 0

    def test_constant_false_check_becomes_trap(self):
        module = lower_ssa("""
program p
  real :: a(10)
  a(11) = 1.0
end program
""")
        optimize_module(module, OptimizerOptions(scheme=Scheme.NI))
        traps = [i for i in module.main.instructions()
                 if isinstance(i, Trap)]
        assert traps

    def test_trap_reported(self):
        module = lower_ssa("""
program p
  real :: a(10)
  a(11) = 1.0
end program
""")
        stats = optimize_module(module, OptimizerOptions(scheme=Scheme.NI))
        assert stats["p"].trap_reports


class TestImplicationModes:
    STENCIL = """
program stencil
  input integer :: n = 30
  integer :: i
  real :: x(100)
  do i = 2, n
    x(i) = x(i + 1) + x(i - 1) + x(i)
  end do
  print x(2)
end program
"""

    def run_mode(self, scheme, mode):
        machine = compile_and_run(
            self.STENCIL, OptimizerOptions(scheme=scheme, implication=mode))
        return machine.counters.checks

    def test_ni_prime_not_better(self):
        assert self.run_mode(Scheme.NI, ImplicationMode.NONE) >= \
            self.run_mode(Scheme.NI, ImplicationMode.ALL)

    def test_ni_prime_strictly_worse_on_stencils(self):
        assert self.run_mode(Scheme.NI, ImplicationMode.NONE) > \
            self.run_mode(Scheme.NI, ImplicationMode.ALL)

    def test_lls_prime_keeps_preheader_implications(self):
        lls = self.run_mode(Scheme.LLS, ImplicationMode.ALL)
        lls_prime = self.run_mode(Scheme.LLS, ImplicationMode.CROSS_FAMILY)
        baseline = run_baseline(self.STENCIL).counters.checks
        assert lls_prime < baseline * 0.25  # still close to LLS
        assert lls_prime >= lls

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_modes_preserve_output(self, mode):
        baseline = run_baseline(self.STENCIL)
        machine = compile_and_run(
            self.STENCIL,
            OptimizerOptions(scheme=Scheme.LLS, implication=mode))
        assert machine.output == baseline.output


class TestInxMode:
    DERIVED_IV = """
program derived
  input integer :: n = 25
  integer :: i, k
  real :: a(200)
  k = 3
  do i = 1, n
    a(k) = 2.0
    k = k + 5
  end do
  print a(3)
end program
"""

    def test_inx_hoists_derived_iv(self):
        prx = compile_and_run(
            self.DERIVED_IV,
            OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.PRX))
        inx = compile_and_run(
            self.DERIVED_IV,
            OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX))
        assert inx.counters.checks < prx.counters.checks

    def test_inx_output_preserved(self):
        baseline = run_baseline(self.DERIVED_IV)
        inx = compile_and_run(
            self.DERIVED_IV,
            OptimizerOptions(scheme=Scheme.LLS, kind=CheckKind.INX))
        assert inx.output == baseline.output

    def test_inx_li_sees_invariant_assigned_in_loop(self):
        source = """
program invar
  input integer :: base = 7
  integer :: i, m
  real :: y(50)
  do i = 1, 20
    m = base + 2
    y(m) = y(m) + 1.0
  end do
  print y(9)
end program
"""
        prx = compile_and_run(
            source, OptimizerOptions(scheme=Scheme.LI, kind=CheckKind.PRX))
        inx = compile_and_run(
            source, OptimizerOptions(scheme=Scheme.LI, kind=CheckKind.INX))
        assert inx.counters.checks < prx.counters.checks


class TestStats:
    def test_stats_populated(self, loop_program):
        module = lower_ssa(loop_program)
        stats = optimize_module(module, OptimizerOptions(scheme=Scheme.LLS))
        main_stats = stats["loopy"]
        assert main_stats.checks_before > main_stats.checks_after
        assert main_stats.inserted >= 1
        assert main_stats.eliminated >= 1

    def test_stats_merge(self, loop_program):
        from repro.checks import OptimizeStats
        module = lower_ssa(loop_program)
        stats = optimize_module(module, OptimizerOptions())
        total = OptimizeStats("total")
        for s in stats.values():
            total.merge(s)
        assert total.checks_before == sum(
            s.checks_before for s in stats.values())
