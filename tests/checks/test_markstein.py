"""Tests for the Markstein-Cocke-Markstein baseline scheme (extension)."""

import pytest

from repro.checks import OptimizerOptions, Scheme

from ..conftest import compile_and_run, run_baseline


def checks_for(source, scheme, inputs=None):
    return compile_and_run(source, OptimizerOptions(scheme=scheme),
                           inputs).counters.checks


SIMPLE_LOOP = """
program p
  input integer :: n = 25
  integer :: i
  real :: a(100)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""

CONDITIONAL_CHECKS = """
program p
  input integer :: n = 25
  integer :: i
  real :: a(100)
  do i = 1, n
    if (mod(i, 2) == 0) then
      a(i) = real(i)
    end if
  end do
  print a(2)
end program
"""

COMPOUND_SUBSCRIPT = """
program p
  input integer :: n = 25
  integer :: i
  real :: a(100)
  do i = 1, n
    a(2 * i + 1) = real(i)
  end do
  print a(3)
end program
"""


class TestMCM:
    def test_hoists_simple_index_checks(self):
        baseline = run_baseline(SIMPLE_LOOP).counters.checks
        mcm = checks_for(SIMPLE_LOOP, Scheme.MCM)
        assert mcm < baseline * 0.2

    def test_matches_lls_on_simple_loops(self):
        assert checks_for(SIMPLE_LOOP, Scheme.MCM) == \
            checks_for(SIMPLE_LOOP, Scheme.LLS)

    def test_misses_checks_under_branches(self):
        """Articulation-node restriction: checks inside an if are not
        candidates, unlike LLS's anticipatability (which also skips
        them here) -- but unlike LLS, MCM cannot catch them even when
        a sibling unconditional check exists."""
        source = """
program p
  input integer :: n = 25
  integer :: i
  real :: a(100), b(100)
  do i = 1, n
    b(i) = 1.0
    if (mod(i, 2) == 0) then
      a(i) = real(i)
    end if
  end do
  print a(2)
end program
"""
        mcm = checks_for(source, Scheme.MCM)
        lls = checks_for(source, Scheme.LLS)
        assert lls <= mcm

    def test_misses_compound_subscripts(self):
        """'Simple range expressions' only: 2*i+1 has coefficient 2."""
        mcm = checks_for(COMPOUND_SUBSCRIPT, Scheme.MCM)
        lls = checks_for(COMPOUND_SUBSCRIPT, Scheme.LLS)
        assert lls < mcm  # LLS substitutes the linear check; MCM cannot

    def test_never_worse_than_ni(self):
        for source in (SIMPLE_LOOP, CONDITIONAL_CHECKS, COMPOUND_SUBSCRIPT):
            assert checks_for(source, Scheme.MCM) <= \
                checks_for(source, Scheme.NI)

    def test_output_preserved(self):
        for source in (SIMPLE_LOOP, CONDITIONAL_CHECKS, COMPOUND_SUBSCRIPT):
            baseline = run_baseline(source)
            machine = compile_and_run(source,
                                      OptimizerOptions(scheme=Scheme.MCM))
            assert machine.output == baseline.output

    def test_traps_preserved(self):
        from repro.errors import RangeTrap
        baseline_trap = False
        try:
            run_baseline(SIMPLE_LOOP, {"n": 200})
        except RangeTrap:
            baseline_trap = True
        assert baseline_trap
        with pytest.raises(RangeTrap):
            compile_and_run(SIMPLE_LOOP, OptimizerOptions(scheme=Scheme.MCM),
                            {"n": 200})

    def test_zero_trip_guarded(self):
        machine = compile_and_run(SIMPLE_LOOP,
                                  OptimizerOptions(scheme=Scheme.MCM),
                                  {"n": 0})
        assert machine.counters.traps == 0


class TestMCMOnSuite:
    def test_between_ni_and_lls_everywhere(self):
        from repro.benchsuite import all_programs
        from repro.pipeline.stats import measure_baseline, measure_scheme

        for program in all_programs():
            base = measure_baseline(program.name, program.source,
                                    program.test_inputs)
            results = {}
            for scheme in (Scheme.NI, Scheme.MCM, Scheme.LLS):
                cell = measure_scheme(program.name, program.source,
                                      OptimizerOptions(scheme=scheme),
                                      base.dynamic_checks,
                                      program.test_inputs)
                results[scheme] = cell.percent_eliminated
            assert results[Scheme.NI] - 1e-9 <= results[Scheme.MCM] \
                <= results[Scheme.LLS] + 1e-9

    def test_loses_to_lls_on_trfd(self):
        """trfd's off+j subscripts are not 'simple': the paper's
        conjectured gap between MCM and loop-limit substitution."""
        from repro.benchsuite import get_program
        from repro.pipeline.stats import measure_baseline, measure_scheme

        program = get_program("trfd")
        base = measure_baseline(program.name, program.source,
                                program.test_inputs)
        mcm = measure_scheme(program.name, program.source,
                             OptimizerOptions(scheme=Scheme.MCM),
                             base.dynamic_checks, program.test_inputs)
        lls = measure_scheme(program.name, program.source,
                             OptimizerOptions(scheme=Scheme.LLS),
                             base.dynamic_checks, program.test_inputs)
        assert lls.percent_eliminated > mcm.percent_eliminated + 5.0
