"""Tests for check availability and anticipatability (section 3.2)."""

from repro.checks import (CanonicalCheck, CheckAnalysis,
                          CheckImplicationGraph, universe_from_function)
from repro.ir import Check

from ..conftest import lower_ssa


def analyze(source):
    module = lower_ssa(source)
    main = module.main
    universe = universe_from_function(main)
    cig = CheckImplicationGraph(universe)
    return CheckAnalysis(main, universe, cig), main


STRAIGHT = """
program p
  input integer :: n = 3
  real :: a(10)
  a(2 * n) = 0.0
  a(2 * n - 1) = 1.0
end program
"""


class TestLocalSets:
    def test_comp_contains_weaker_closure(self):
        analysis, main = analyze(STRAIGHT)
        entry = main.entry
        comp = analysis.comp[entry]
        # the first upper check (2n <= 10) generates the weaker (2n <= 11)
        strong = analysis.universe.id_of(
            CanonicalCheck.of(_checks(main)[1]))
        weak = analysis.universe.id_of(
            CanonicalCheck.of(_checks(main)[3]))
        assert strong in comp
        assert weak in comp

    def test_antloc_is_family_restricted(self):
        analysis, main = analyze(STRAIGHT)
        antloc = analysis.antloc[main.entry]
        # anticipatability closure stays within families: everything here
        # is same-family, so all four checks appear
        assert len(antloc) == len(analysis.universe)

    def test_def_kills_family(self):
        analysis, main = analyze("""
program p
  integer :: k
  real :: a(10)
  k = 2
  a(k) = 0.0
  k = 11
  a(k) = 1.0
end program
""")
        entry = main.entry
        # checks on the first k version are killed by the second def in
        # non-SSA form; in SSA the versions are distinct families
        assert len(analysis.universe.families) >= 3

    def test_transparency(self):
        analysis, main = analyze(STRAIGHT)
        # nothing in the entry block redefines n, so every check family
        # is transparent
        assert analysis.transp[main.entry] == analysis.all_ids


class TestAvailability:
    def test_forward_propagation(self, loop_program):
        module = lower_ssa(loop_program)
        main = module.main
        universe = universe_from_function(main)
        cig = CheckImplicationGraph(universe)
        analysis = CheckAnalysis(main, universe, cig)
        avin, avout = analysis.availability()
        body = next(b for b in main.blocks if b.name.startswith("do_body"))
        header = next(b for b in main.blocks
                      if b.name.startswith("do_head"))
        # the body's checks flow around the back edge but are killed by
        # the loop phi defining i
        assert avin[header] != analysis.all_ids

    def test_entry_starts_empty(self):
        analysis, main = analyze(STRAIGHT)
        avin, _ = analysis.availability()
        assert avin[main.entry] == frozenset()

    def test_edge_gen_facts_enter_at_edge(self, loop_program):
        module = lower_ssa(loop_program)
        main = module.main
        universe = universe_from_function(main)
        canonical = universe.check_of(0)
        cig = CheckImplicationGraph(universe)
        analysis = CheckAnalysis(main, universe, cig)
        header = next(b for b in main.blocks
                      if b.name.startswith("do_head"))
        body = next(b for b in main.blocks if b.name.startswith("do_body"))
        exit_block = next(b for b in main.blocks
                          if b.name.startswith("do_exit"))
        avin_plain, _ = analysis.availability()
        avin_edge, _ = analysis.availability(
            {(header, body): [canonical]})
        assert 0 in avin_edge[body]
        # but the fact does not leak to the zero-trip exit path
        assert 0 not in avin_edge[exit_block] or 0 in avin_plain[exit_block]


class TestAnticipatability:
    def test_backward_propagation(self):
        analysis, main = analyze(STRAIGHT)
        antin, _ = analysis.anticipatability()
        assert antin[main.entry] == analysis.all_ids

    def test_exit_is_empty(self):
        analysis, main = analyze(STRAIGHT)
        _, antout = analysis.anticipatability()
        exits = [b for b in main.blocks if not b.successors()]
        for block in exits:
            assert antout[block] == frozenset()

    def test_branch_needs_both_arms(self):
        analysis, main = analyze("""
program p
  input integer :: n = 3, c = 1
  real :: a(10)
  if (c > 0) then
    a(n) = 1.0
  else
    a(n + 4) = 2.0
  end if
end program
""")
        antin, _ = analysis.anticipatability()
        # family {n}: (n <= 10) in one arm, (n <= 6) in the other;
        # at the entry the weaker (n <= 10) is anticipatable (both arms
        # check something at least as strong), the stronger is not
        weak_upper = None
        strong_upper = None
        for check in _checks(main):
            canonical = CanonicalCheck.of(check)
            if check.kind == "upper" and canonical.bound == 10:
                weak_upper = analysis.universe.id_of(canonical)
            if check.kind == "upper" and canonical.bound == 6:
                strong_upper = analysis.universe.id_of(canonical)
        assert weak_upper in antin[main.entry]
        assert strong_upper not in antin[main.entry]


class TestStatementWalks:
    def test_facts_before_checks_order(self):
        analysis, main = analyze(STRAIGHT)
        walk = analysis.facts_before_checks(main.entry, frozenset())
        assert [isinstance(i, Check) for _, i, _ in walk] == [True] * 4
        # the second access's upper check sees the first one's facts
        last_facts = walk[-1][2]
        assert last_facts

    def test_ant_before_positions(self):
        analysis, main = analyze(STRAIGHT)
        walk = analysis.ant_before_positions(main.entry, frozenset())
        # at the first (weakest) lower check, the stronger later lower
        # check is anticipatable
        first_check = walk[0]
        strong_lower = analysis.universe.id_of(
            CanonicalCheck.of(_checks(main)[2]))
        assert strong_lower in first_check[2]


def _checks(function):
    return [inst for inst in function.instructions()
            if isinstance(inst, Check)]
