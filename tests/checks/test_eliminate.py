"""Tests for redundancy elimination and compile-time folding."""

from repro.checks import (CanonicalCheck, CheckAnalysis,
                          CheckImplicationGraph, eliminate_redundant,
                          fold_compile_time, universe_from_function)
from repro.ir import Check, Trap

from ..conftest import lower_ssa


def checks_of(function):
    return [i for i in function.instructions() if isinstance(i, Check)]


def eliminate(source):
    module = lower_ssa(source)
    main = module.main
    universe = universe_from_function(main)
    cig = CheckImplicationGraph(universe)
    analysis = CheckAnalysis(main, universe, cig)
    removed, proved = eliminate_redundant(analysis)
    assert proved == 0  # the prover tier is off by default
    return main, removed


class TestElimination:
    def test_identical_checks_deduplicated(self):
        main, removed = eliminate("""
program p
  input integer :: n = 2
  real :: a(10), b(10)
  a(n) = 1.0
  b(n) = 2.0
end program
""")
        assert removed == 2  # b's lower and upper are duplicates

    def test_weaker_check_eliminated(self):
        main, removed = eliminate("""
program p
  input integer :: n = 2
  real :: a(10)
  a(n) = 1.0
  a(n + 1) = 2.0
end program
""")
        # (n <= 9) from the second access is implied by nothing;
        # its lower (-n <= 0) is implied by the first (-n <= -1)
        kinds = [(c.kind, c.bound) for c in checks_of(main)]
        assert ("lower", 0) not in kinds

    def test_stronger_check_not_eliminated(self):
        main, removed = eliminate("""
program p
  input integer :: n = 2
  real :: a(10)
  a(n + 1) = 2.0
  a(n) = 1.0
end program
""")
        # second access's upper (n <= 10) is implied by the first
        # (n <= 9); its lower (-n <= -1) is NOT implied by (-n <= 0)
        remaining = [CanonicalCheck.of(c) for c in checks_of(main)]
        bounds = {(str(c.linexpr), c.bound) for c in remaining}
        assert ("-n", -1) in bounds

    def test_branch_blocks_elimination(self):
        main, removed = eliminate("""
program p
  input integer :: n = 2, c = 1
  real :: a(10)
  if (c > 0) then
    a(n) = 1.0
  end if
  a(n) = 2.0
end program
""")
        # the check after the if is only partially redundant: kept
        assert len(checks_of(main)) == 4

    def test_merge_from_both_arms_eliminates(self):
        main, removed = eliminate("""
program p
  input integer :: n = 2, c = 1
  real :: a(10)
  if (c > 0) then
    a(n) = 1.0
  else
    a(n) = 2.0
  end if
  a(n) = 3.0
end program
""")
        # both arms perform the checks: the post-join pair is redundant
        assert removed >= 2


class TestCompileTimeFolding:
    def test_true_checks_removed(self):
        module = lower_ssa("""
program p
  real :: a(10)
  a(5) = 1.0
end program
""")
        removed, reports = fold_compile_time(module.main)
        assert removed == 2
        assert reports == []

    def test_false_check_becomes_trap(self):
        module = lower_ssa("""
program p
  real :: a(10)
  a(0) = 1.0
end program
""")
        removed, reports = fold_compile_time(module.main)
        assert len(reports) == 1
        assert any(isinstance(i, Trap)
                   for i in module.main.instructions())

    def test_symbolic_checks_untouched(self):
        module = lower_ssa("""
program p
  input integer :: n = 1
  real :: a(10)
  a(n) = 1.0
end program
""")
        removed, reports = fold_compile_time(module.main)
        assert removed == 0
        assert len(checks_of(module.main)) == 2

    def test_statically_false_guard_removes_cond_check(self):
        from repro.ir import Check, Var, INT
        from repro.ir.instructions import Guard
        from repro.symbolic import LinearExpr
        module = lower_ssa("program p\nend program")
        main = module.main
        guard = Guard(LinearExpr.constant(0).drop_const(), -1, {})
        cond = Check(LinearExpr({}, 0), -5, {}, "upper", "", [guard])
        main.entry.insert(0, cond)
        removed, reports = fold_compile_time(main)
        assert removed == 1  # 0 <= -1 is false: check never performed

    def test_statically_true_guard_dropped(self):
        from repro.ir import Check
        from repro.ir.instructions import Guard
        from repro.symbolic import LinearExpr
        module = lower_ssa("""
program p
  input integer :: n = 1
  real :: a(10)
  a(n) = 1.0
end program
""")
        main = module.main
        guard = Guard(LinearExpr({}, 0), 5, {})
        target = checks_of(main)[0]
        target.guards = [guard]
        fold_compile_time(main)
        assert target.guards == []

    def test_symbolic_guard_blocks_false_body(self):
        from repro.ir import Check, Var, INT
        from repro.ir.instructions import Guard
        from repro.symbolic import LinearExpr
        module = lower_ssa("""
program p
  input integer :: n = 1
  real :: a(10)
  a(n) = 1.0
end program
""")
        main = module.main
        guard = Guard(LinearExpr({"n": 1}, 0), 0, {"n": Var("n", INT)})
        cond = Check(LinearExpr({}, 0), -5, {}, "upper", "", [guard])
        main.entry.insert(0, cond)
        removed, reports = fold_compile_time(main)
        # must NOT turn into an unconditional trap: the guard may be false
        assert not any(isinstance(i, Trap)
                       for i in main.instructions())
        assert cond in list(main.instructions())
