"""Tests for optimizer configuration and labels."""

from repro.checks import CheckKind, ImplicationMode, OptimizerOptions, Scheme


class TestLabels:
    def test_default_label(self):
        assert OptimizerOptions().label() == "PRX-LLS"

    def test_inx_label(self):
        options = OptimizerOptions(scheme=Scheme.SE, kind=CheckKind.INX)
        assert options.label() == "INX-SE"

    def test_primed_labels(self):
        ni_prime = OptimizerOptions(scheme=Scheme.NI,
                                    implication=ImplicationMode.NONE)
        assert ni_prime.label() == "PRX-NI'"
        lls_prime = OptimizerOptions(
            scheme=Scheme.LLS,
            implication=ImplicationMode.CROSS_FAMILY)
        assert lls_prime.label() == "PRX-LLS'"

    def test_eleven_schemes(self):
        values = [s.value for s in Scheme]
        assert values == ["NI", "CS", "LNI", "SE", "LI", "LLS", "ALL",
                          "MCM", "VR", "SPEC", "LO"]

    def test_repr_is_informative(self):
        text = repr(OptimizerOptions(scheme=Scheme.ALL))
        assert "ALL" in text and "PRX" in text
