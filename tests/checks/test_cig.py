"""Tests for families and the Check Implication Graph, including the
paper's Figures 3 and 4."""

from repro.checks import (CanonicalCheck, CheckImplicationGraph,
                          CheckUniverse, ImplicationMode, ImplicationStore)
from repro.symbolic import LinearExpr


def c(terms, bound):
    return CanonicalCheck(LinearExpr(terms, 0), bound)


class TestUniverse:
    def test_ids_are_dense(self):
        universe = CheckUniverse()
        ids = [universe.add(c({"i": 1}, b)) for b in (5, 7, 3)]
        assert ids == [0, 1, 2]

    def test_add_is_idempotent(self):
        universe = CheckUniverse()
        first = universe.add(c({"i": 1}, 5))
        second = universe.add(c({"i": 1}, 5))
        assert first == second
        assert len(universe) == 1

    def test_families_group_by_expression(self):
        universe = CheckUniverse()
        a = universe.add(c({"i": 1}, 5))
        b = universe.add(c({"i": 1}, 9))
        other = universe.add(c({"j": 1}, 5))
        assert universe.family_of[a] == universe.family_of[b]
        assert universe.family_of[a] != universe.family_of[other]

    def test_family_members_sorted_strongest_first(self):
        universe = CheckUniverse()
        weak = universe.add(c({"i": 1}, 9))
        strong = universe.add(c({"i": 1}, 2))
        family = universe.family_of[weak]
        assert universe.family_members(family) == [strong, weak]

    def test_family_symbols(self):
        universe = CheckUniverse()
        check_id = universe.add(c({"i": 1, "n": -2}, 0))
        family = universe.family_of[check_id]
        assert universe.family_symbols(family) == ("i", "n")


class TestFigure3:
    """Figure 3: families F1 = {C3, C1} (lower checks), F2 = {C2, C4}."""

    def test_within_family_strength(self):
        universe = CheckUniverse()
        c1 = universe.add(c({"n": -2}, -5))
        c2 = universe.add(c({"n": 2}, 10))
        c3 = universe.add(c({"n": -2}, -6))
        c4 = universe.add(c({"n": 2}, 11))
        cig = CheckImplicationGraph(universe)
        assert cig.as_strong(c3, c1)       # C3 => C1
        assert cig.as_strong(c2, c4)       # C2 => C4
        assert not cig.as_strong(c1, c3)
        assert not cig.as_strong(c2, c3)   # different families, no edge


class TestFigure4:
    """Figure 4: edge F3 -> F4 with weight 4 from (n<=6) => (m<=10)."""

    def setup_method(self):
        self.universe = CheckUniverse()
        self.n6 = self.universe.add(c({"n": 1}, 6))
        self.n1 = self.universe.add(c({"n": 1}, 1))
        self.m10 = self.universe.add(c({"m": 1}, 10))
        self.m7 = self.universe.add(c({"m": 1}, 7))
        self.m3 = self.universe.add(c({"m": 1}, 3))
        store = ImplicationStore()
        store.add(c({"n": 1}, 6), c({"m": 1}, 10))  # weight 4
        self.cig = CheckImplicationGraph(self.universe, store)

    def test_edge_weight_inference(self):
        # (n <= 1) is as strong as (m <= 7): 1 + 4 <= 7
        assert self.cig.as_strong(self.n1, self.m7)

    def test_weight_limit(self):
        # but NOT as strong as (m <= 3): 1 + 4 > 3
        assert not self.cig.as_strong(self.n1, self.m3)

    def test_original_edge(self):
        assert self.cig.as_strong(self.n6, self.m10)

    def test_no_reverse_implication(self):
        assert not self.cig.as_strong(self.m7, self.n1)


class TestParallelEdges:
    def test_min_weight_kept(self):
        store = ImplicationStore()
        store.add(c({"n": 1}, 0), c({"m": 1}, 8))   # weight 8
        store.add(c({"n": 1}, 0), c({"m": 1}, 3))   # weight 3 (tighter)
        assert store.edges[(LinearExpr({"n": 1}, 0),
                            LinearExpr({"m": 1}, 0))] == 3

    def test_transitive_paths(self):
        universe = CheckUniverse()
        a = universe.add(c({"a": 1}, 0))
        b = universe.add(c({"b": 1}, 5))
        target = universe.add(c({"z": 1}, 10))
        store = ImplicationStore()
        store.add_edge(LinearExpr({"a": 1}, 0), LinearExpr({"b": 1}, 0), 2)
        store.add_edge(LinearExpr({"b": 1}, 0), LinearExpr({"z": 1}, 0), 3)
        cig = CheckImplicationGraph(universe, store)
        # 0 + 2 + 3 = 5 <= 10
        assert cig.as_strong(a, target)


class TestModes:
    def setup_method(self):
        self.universe = CheckUniverse()
        self.strong = self.universe.add(c({"i": 1}, 5))
        self.weak = self.universe.add(c({"i": 1}, 9))
        self.other = self.universe.add(c({"n": 1}, 5))
        store = ImplicationStore()
        store.add(c({"n": 1}, 5), c({"i": 1}, 9))
        self.store = store

    def test_mode_all(self):
        cig = CheckImplicationGraph(self.universe, self.store,
                                    ImplicationMode.ALL)
        assert cig.as_strong(self.strong, self.weak)
        assert cig.as_strong(self.other, self.weak)

    def test_mode_none_only_identity(self):
        cig = CheckImplicationGraph(self.universe, self.store,
                                    ImplicationMode.NONE)
        assert cig.as_strong(self.strong, self.strong)
        assert not cig.as_strong(self.strong, self.weak)
        assert not cig.as_strong(self.other, self.weak)

    def test_mode_cross_family(self):
        cig = CheckImplicationGraph(self.universe, self.store,
                                    ImplicationMode.CROSS_FAMILY)
        assert not cig.as_strong(self.strong, self.weak)  # same family off
        assert cig.as_strong(self.other, self.weak)       # edges still on


class TestClosures:
    def test_weaker_set_full(self):
        universe = CheckUniverse()
        strong = universe.add(c({"i": 1}, 5))
        weak = universe.add(c({"i": 1}, 9))
        other = universe.add(c({"j": 1}, 9))
        cig = CheckImplicationGraph(universe)
        assert cig.weaker_set(strong) == {strong, weak}

    def test_weaker_set_family_only(self):
        universe = CheckUniverse()
        a = universe.add(c({"i": 1}, 5))
        b = universe.add(c({"i": 1}, 9))
        z = universe.add(c({"z": 1}, 99))
        store = ImplicationStore()
        store.add(c({"i": 1}, 5), c({"z": 1}, 99))
        cig = CheckImplicationGraph(universe, store)
        assert z in cig.weaker_set(a, family_only=False)
        assert z not in cig.weaker_set(a, family_only=True)

    def test_strongest_implying(self):
        universe = CheckUniverse()
        weak = universe.add(c({"i": 1}, 9))
        mid = universe.add(c({"i": 1}, 7))
        strong = universe.add(c({"i": 1}, 5))
        cig = CheckImplicationGraph(universe)
        best = cig.strongest_implying(weak, frozenset([weak, mid, strong]))
        assert best == strong

    def test_strongest_implying_ignores_other_families(self):
        universe = CheckUniverse()
        weak = universe.add(c({"i": 1}, 9))
        other = universe.add(c({"j": 1}, 1))
        cig = CheckImplicationGraph(universe)
        assert cig.strongest_implying(weak, frozenset([other])) is None

    def test_strongest_implying_cross_family(self):
        universe = CheckUniverse()
        weak = universe.add(c({"i": 1}, 9))
        samefam = universe.add(c({"i": 1}, 7))
        other = universe.add(c({"j": 1}, 4))
        store = ImplicationStore()
        # (j <= b) implies (i <= b + 2): `other` effectively imposes
        # i <= 6, beating the same-family candidate's i <= 7
        store.add_edge(LinearExpr({"j": 1}, 0), LinearExpr({"i": 1}, 0), 2)
        cig = CheckImplicationGraph(universe, store)
        candidates = frozenset([samefam, other])
        assert cig.strongest_implying(weak, candidates) == samefam
        assert cig.strongest_implying(
            weak, candidates, cross_family=True) == other

    def test_strongest_implying_cross_family_needs_path(self):
        universe = CheckUniverse()
        weak = universe.add(c({"i": 1}, 9))
        other = universe.add(c({"j": 1}, 1))
        cig = CheckImplicationGraph(universe)
        assert cig.strongest_implying(
            weak, frozenset([other]), cross_family=True) is None
