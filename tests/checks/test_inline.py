"""Unit tests for the subroutine inliner (pre-SSA pass)."""

from repro.checks.inline import InlineStats, inline_module
from repro.ir.instructions import Assign, Call, Check
from repro.pipeline.driver import compile_source, run_frontend
from repro.checks.config import CheckKind, OptimizerOptions, Scheme
from repro.interp.machine import Machine


def _lowered(source):
    """Parse + lower with naive checks, no SSA: the inliner's input."""
    return run_frontend(source, ssa=False)


def _main(module):
    return next(f for f in module if f.is_main)


def _calls(function):
    return [inst for inst in function.instructions()
            if isinstance(inst, Call)]


SIMPLE = """
program p
  input integer :: n = 5
  integer :: i
  real :: a(1:n)
  do i = 1, n
    a(i) = real(i)
    call put(n, i, a)
  end do
  print a(1)
end program

subroutine put(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = x(j) + 1.0
end subroutine
"""


class TestBasicInlining:
    def test_call_replaced_by_clone(self):
        module = _lowered(SIMPLE)
        stats = inline_module(module)
        assert stats.inlined_calls == 1
        assert not _calls(_main(module))
        # the clone's blocks are spliced into the caller under a
        # site-stamped name
        names = {b.name for b in _main(module).blocks}
        assert any(name.startswith("inl0_put_") for name in names)

    def test_cloned_checks_carry_context(self):
        module = _lowered(SIMPLE)
        inline_module(module)
        contexts = {getattr(inst, "context", "")
                    for inst in _main(module).instructions()
                    if isinstance(inst, Check)}
        assert any(ctx.startswith("in put (call at line ")
                   for ctx in contexts)
        # the caller's own checks keep an empty context
        assert "" in contexts

    def test_callee_function_left_intact(self):
        module = _lowered(SIMPLE)
        before = sum(1 for _ in module.functions["put"].instructions())
        inline_module(module)
        after = sum(1 for _ in module.functions["put"].instructions())
        assert before == after

    def test_array_param_renamed_to_caller_array(self):
        module = _lowered(SIMPLE)
        inline_module(module)
        arrays = {getattr(inst, "array", None)
                  for inst in _main(module).instructions()
                  if isinstance(inst, Check)}
        arrays.discard(None)
        # every cloned check now names the caller's array, never the
        # callee's formal
        assert "x" not in arrays
        assert "a" in arrays

    def test_stats_dict_shape(self):
        stats = InlineStats()
        assert set(stats.as_dict()) == {
            "inlined_calls", "skipped_recursive",
            "skipped_local_arrays", "skipped_budget"}


class TestArgumentBinding:
    def test_aliased_scalar_joins_caller_families(self):
        # `put` never assigns m or j, so both alias the caller's n/i:
        # the cloned check's symbols are the caller's own
        module = _lowered(SIMPLE)
        inline_module(module)
        main = _main(module)
        cloned = [inst for inst in main.instructions()
                  if isinstance(inst, Check)
                  and getattr(inst, "context", "")]
        assert cloned
        for check in cloned:
            for sym in check.linexpr.symbols():
                assert not sym.startswith(("m.", "j.")), check

    def test_assigned_param_gets_fresh_copy(self):
        # `bump` assigns its j parameter (array bounds may never be
        # assigned, so the mutated param is a plain scalar): binding
        # must copy, never alias, and the caller's i stays untouched
        source = """
program p
  input integer :: n = 4
  integer :: i
  real :: a(1:n)
  do i = 1, n
    a(i) = 0.0
    call bump(n, i, a)
  end do
  print a(1)
end program

subroutine bump(m, j, x)
  integer :: m, j
  real :: x(1:m)
  j = j + 1
  if (j <= m) then
    x(j) = 1.0
  end if
end subroutine
"""
        module = _lowered(source)
        inline_module(module)
        main = _main(module)
        names = {inst.def_var().name for inst in main.instructions()
                 if inst.def_var() is not None}
        assert any(name.startswith("j.i") for name in names)
        # the caller's loop variable is only ever assigned by its own
        # loop increment, never by the clone's j mutation
        for inst in main.instructions():
            if isinstance(inst, Assign) and inst.def_var() is not None \
                    and inst.def_var().name == "i":
                for block in main.blocks:
                    if inst in block.instructions:
                        assert not block.name.startswith("inl")

    def test_local_scalars_freshened(self):
        module = _lowered(SIMPLE)
        caller_scalars = set(_main(module).scalar_types)
        inline_module(module)
        new_scalars = set(_main(module).scalar_types) - caller_scalars
        # `put` has no locals beyond its params here, so any fresh
        # names must be site-stamped
        for name in new_scalars:
            assert ".i" in name


class TestEligibility:
    def test_self_recursion_never_entered(self):
        source = """
program p
  input integer :: n = 3
  real :: a(1:n)
  call down(n, a)
  print a(1)
end program

subroutine down(m, x)
  integer :: m
  real :: x(1:m)
  x(m) = 1.0
  if (m > 1) then
    call down(m - 1, x)
  end if
end subroutine
"""
        module = _lowered(source)
        stats = inline_module(module)
        assert stats.inlined_calls == 0
        assert stats.skipped_recursive >= 1
        assert _calls(_main(module))

    def test_mutual_recursion_never_entered(self):
        source = """
program p
  input integer :: n = 3
  real :: a(1:n)
  call ping(n, a)
  print a(1)
end program

subroutine ping(m, x)
  integer :: m
  real :: x(1:m)
  if (m > 1) then
    call pong(m - 1, x)
  end if
end subroutine

subroutine pong(m, x)
  integer :: m
  real :: x(1:m)
  x(m) = 2.0
  if (m > 1) then
    call ping(m - 1, x)
  end if
end subroutine
"""
        module = _lowered(source)
        stats = inline_module(module)
        assert stats.inlined_calls == 0
        assert stats.skipped_recursive >= 1

    def test_local_array_callee_skipped(self):
        source = """
program p
  input integer :: n = 4
  real :: a(1:n)
  call scratch(n, a)
  print a(1)
end program

subroutine scratch(m, x)
  integer :: m, k
  real :: x(1:m)
  real :: tmp(8)
  do k = 1, m
    tmp(k) = x(k)
    x(k) = tmp(k) * 2.0
  end do
end subroutine
"""
        module = _lowered(source)
        stats = inline_module(module)
        assert stats.inlined_calls == 0
        assert stats.skipped_local_arrays >= 1
        assert _calls(_main(module))


class TestBudgets:
    def test_callee_size_budget(self):
        module = _lowered(SIMPLE)
        stats = inline_module(module, max_callee_size=1)
        assert stats.inlined_calls == 0
        assert stats.skipped_budget >= 1
        assert _calls(_main(module))

    def test_caller_size_budget(self):
        module = _lowered(SIMPLE)
        stats = inline_module(module, max_size=1)
        assert stats.inlined_calls == 0
        assert stats.skipped_budget >= 1

    def test_depth_budget_stops_transitive_chains(self):
        source = """
program p
  input integer :: n = 4
  real :: a(1:n)
  call one(n, a)
  print a(1)
end program

subroutine one(m, x)
  integer :: m
  real :: x(1:m)
  call two(m, x)
end subroutine

subroutine two(m, x)
  integer :: m
  real :: x(1:m)
  x(1) = 1.0
end subroutine
"""
        module = _lowered(source)
        stats = inline_module(module, max_depth=1)
        # two -> one inlines (depth 1); one -> main is then depth 2
        # and must be declined
        assert stats.skipped_budget >= 1
        assert _calls(_main(module))

    def test_full_transitive_inlining(self):
        source = """
program p
  input integer :: n = 4
  real :: a(1:n)
  call one(n, a)
  print a(1)
end program

subroutine one(m, x)
  integer :: m
  real :: x(1:m)
  call two(m, x)
end subroutine

subroutine two(m, x)
  integer :: m
  real :: x(1:m)
  x(1) = 1.0
end subroutine
"""
        module = _lowered(source)
        stats = inline_module(module)
        assert stats.inlined_calls >= 2
        assert not _calls(_main(module))


class TestSemantics:
    def _outputs(self, source, inputs=None):
        outs = []
        for inline in (False, True):
            options = OptimizerOptions(scheme=Scheme.NI,
                                       kind=CheckKind.INX, inline=inline)
            program = compile_source(source, options, verify_ir=True)
            machine = Machine(program.module, inputs)
            machine.run()
            outs.append(list(machine.output))
        return outs

    def test_output_identical_simple(self):
        plain, inlined = self._outputs(SIMPLE)
        assert plain == inlined

    def test_output_identical_with_residual_calls(self):
        # recursive callee stays a real call inside an inlined world
        source = """
program p
  input integer :: n = 4
  integer :: i
  real :: a(1:n)
  do i = 1, n
    a(i) = real(i)
    call put(n, i, a)
  end do
  call down(n, a)
  print a(1)
  print a(n)
end program

subroutine put(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = x(j) * 2.0
end subroutine

subroutine down(m, x)
  integer :: m
  real :: x(1:m)
  x(m) = x(m) + 0.5
  if (m > 1) then
    call down(m - 1, x)
  end if
end subroutine
"""
        plain, inlined = self._outputs(source)
        assert plain == inlined

    def test_zero_extent_arrays(self):
        # n = 0: every symbolically-bounded array is empty, loops run
        # zero times, and the inlined program must agree exactly
        source = """
program p
  input integer :: n = 0
  integer :: i
  real :: a(1:n)
  real :: total
  total = 0.0
  do i = 1, n
    a(i) = 1.0
    call put(n, i, a)
    total = total + a(i)
  end do
  print total
end program

subroutine put(m, j, x)
  integer :: m, j
  real :: x(1:m)
  x(j) = x(j) + 1.0
end subroutine
"""
        plain, inlined = self._outputs(source, {"n": 0})
        assert plain == inlined
