"""Tests for preheader insertion (LI and LLS)."""

from repro.checks import (CheckKind, OptimizerOptions, Scheme,
                          optimize_module)
from repro.ir import Check

from ..conftest import compile_and_run, lower_ssa, run_baseline


def cond_checks(function):
    return [i for i in function.instructions()
            if isinstance(i, Check) and i.is_conditional]


def body_checks(function):
    from repro.analysis import LoopForest
    forest = LoopForest(function)
    found = []
    for loop in forest.loops:
        for block in loop.blocks:
            for inst in block.instructions:
                if isinstance(inst, Check):
                    found.append(inst)
    return found


def optimized(source, scheme=Scheme.LLS, kind=CheckKind.PRX):
    module = lower_ssa(source)
    optimize_module(module, OptimizerOptions(scheme=scheme, kind=kind))
    return module


class TestInvariantHoisting:
    SOURCE = """
program p
  input integer :: n = 10, k = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    a(k) = a(k) + 1.0
  end do
  print a(5)
end program
"""

    def test_li_hoists_invariant(self):
        module = optimized(self.SOURCE, scheme=Scheme.LI)
        assert cond_checks(module.main)
        assert body_checks(module.main) == []

    def test_guard_is_trip_condition(self):
        module = optimized(self.SOURCE, scheme=Scheme.LI)
        guard = cond_checks(module.main)[0].guards[0]
        # 1 <= n  canonicalizes to  -n <= -1
        assert str(guard.linexpr) == "-n"
        assert guard.bound == -1

    def test_constant_trip_inserts_plain_check(self):
        module = optimized("""
program p
  input integer :: k = 5
  integer :: i
  real :: a(10)
  do i = 1, 8
    a(k) = a(k) + 1.0
  end do
  print a(5)
end program
""", scheme=Scheme.LI)
        # trip count 8 is known nonzero at compile time: no guard needed
        checks = [i for i in module.main.instructions()
                  if isinstance(i, Check)]
        assert checks
        assert all(not c.is_conditional for c in checks)

    def test_dead_loop_gets_no_insertion(self):
        module = optimized("""
program p
  input integer :: k = 5
  integer :: i
  real :: a(10)
  do i = 5, 1
    a(k) = a(k) + 1.0
  end do
end program
""", scheme=Scheme.LI)
        assert cond_checks(module.main) == []


class TestLoopLimitSubstitution:
    def test_figure6_substitution(self):
        module = optimized("""
program p
  input integer :: n = 4
  integer :: j
  integer :: a(1:10)
  do j = 1, 2 * n
    a(j) = a(j) + 2
  end do
  print a(1)
end program
""")
        conds = cond_checks(module.main)
        # the hoisted upper check is Check (2*n <= 10), as in Figure 6
        uppers = [c for c in conds if str(c.linexpr) == "2*n"]
        assert uppers and uppers[0].bound == 10
        assert body_checks(module.main) == []

    def test_lower_check_substitutes_first_iteration(self):
        module = optimized("""
program p
  input integer :: n = 4
  integer :: j
  integer :: a(1:10)
  do j = 1, n
    a(j) = 1
  end do
  print a(1)
end program
""")
        # lower check -j <= -1 at j=1 is compile-time true: vanishes
        for check in module.main.instructions():
            if isinstance(check, Check):
                assert check.kind != "lower" or check.is_conditional

    def test_nonunit_step_materializes_last_value(self):
        source = """
program p
  input integer :: n = 19
  integer :: i
  real :: a(20)
  do i = 1, n, 3
    a(i) = 1.0
  end do
  print a(1)
end program
"""
        module = optimized(source)
        assert body_checks(module.main) == []
        baseline = run_baseline(source, {"n": 19})
        machine = compile_and_run(source, OptimizerOptions(scheme=Scheme.LLS),
                                  {"n": 19})
        assert machine.output == baseline.output

    def test_nested_hoist_to_outermost(self):
        source = """
program p
  input integer :: n = 5, m = 6
  integer :: i, j
  real :: c(10, 10)
  do i = 1, n
    do j = 1, m
      c(i, j) = 1.0
    end do
  end do
  print c(1, 1)
end program
"""
        module = optimized(source)
        main = module.main
        # everything lands in the outermost preheader: the inner loop
        # carries no checks, and the i-checks are substituted with n
        assert body_checks(main) == []
        conds = cond_checks(main)
        exprs = {str(c.linexpr) for c in conds}
        assert "n" in exprs and "m" in exprs

    def test_cascaded_guards_stack(self):
        source = """
program p
  input integer :: n = 5, m = 6
  integer :: i, j
  real :: c(10, 10)
  do i = 1, n
    do j = 1, m
      c(i, j) = 1.0
    end do
  end do
  print c(1, 1)
end program
"""
        module = optimized(source)
        conds = cond_checks(module.main)
        m_checks = [c for c in conds if str(c.linexpr) == "m"]
        assert m_checks
        assert len(m_checks[0].guards) == 2  # inner and outer trip guards

    def test_triangular_loop(self):
        source = """
program p
  input integer :: n = 8
  integer :: i, j
  real :: a(50)
  do i = 1, n
    do j = 1, i
      a(j) = a(j) + 1.0
    end do
  end do
  print a(1)
end program
"""
        baseline = run_baseline(source)
        machine = compile_and_run(source, OptimizerOptions(scheme=Scheme.LLS))
        assert machine.output == baseline.output
        # the inner j-checks substitute to i, hoisted into the inner
        # preheader; re-substituted with n out of the outer loop
        assert machine.counters.checks < baseline.counters.checks * 0.2


class TestIndirectLimits:
    def test_indirect_subscript_not_hoisted(self):
        source = """
program p
  input integer :: n = 8
  integer :: i, k
  integer :: idx(10)
  real :: a(10)
  do i = 1, n
    idx(i) = i
    k = idx(i)
    a(k) = 1.0
  end do
  print a(1)
end program
"""
        module = optimized(source)
        remaining = body_checks(module.main)
        # the a(k) checks (family on the loaded value) must stay inside
        assert remaining

    def test_while_loop_invariant_hoisting(self):
        source = """
program p
  input integer :: n = 6, k = 3
  integer :: i
  real :: a(10)
  i = 1
  while (i <= n) do
    a(k) = a(k) + 1.0
    i = i + 1
  end while
  print a(3)
end program
"""
        baseline = run_baseline(source)
        machine = compile_and_run(source, OptimizerOptions(scheme=Scheme.LLS))
        assert machine.output == baseline.output
        assert machine.counters.checks < baseline.counters.checks


class TestNoImplicationProfitability:
    """Under the NONE ablation a substituted preheader check can never
    imply the body check it covers, so LLS must not insert it -- the
    fuzzer's count-regression finding (a zero-`guard_skipped` loop ran
    more effective checks than naive NI)."""

    SOURCE = """
program p
  input integer :: n = 6
  integer :: i
  real :: a(9)
  do i = 2, n
    a(i) = 1.0
  end do
  print a(2)
end program
"""

    def test_none_mode_skips_substituted_insertion(self):
        from repro.checks import ImplicationMode
        module = optimized_with_mode(self.SOURCE, ImplicationMode.NONE)
        assert cond_checks(module.main) == []
        # LI-style identity hoisting is still allowed: invariant checks
        # imply themselves even under NONE
        module = lower_ssa(TestInvariantHoisting.SOURCE)
        optimize_module(module, OptimizerOptions(
            scheme=Scheme.LI, implication=ImplicationMode.NONE))
        assert cond_checks(module.main)
        assert body_checks(module.main) == []

    def test_none_mode_never_exceeds_naive_counts(self):
        from repro.checks import ImplicationMode
        baseline = run_baseline(self.SOURCE)
        for scheme in (Scheme.LLS, Scheme.LI, Scheme.MCM):
            machine = compile_and_run(self.SOURCE, OptimizerOptions(
                scheme=scheme, implication=ImplicationMode.NONE))
            assert machine.counters.effective_checks() <= \
                baseline.counters.checks, scheme

    def test_cross_family_mode_still_substitutes(self):
        from repro.checks import ImplicationMode
        module = optimized_with_mode(self.SOURCE,
                                     ImplicationMode.CROSS_FAMILY)
        assert cond_checks(module.main)
        assert body_checks(module.main) == []


def optimized_with_mode(source, mode, scheme=Scheme.LLS):
    module = lower_ssa(source)
    optimize_module(module, OptimizerOptions(scheme=scheme,
                                             implication=mode))
    return module
