"""Live cluster lifecycle: spawn, serve, crash-restart, drain.

These tests boot real shard processes (fork start method where
available), so they share one module-scoped cluster for the passive
assertions and pay the per-test boot cost only where the test must
mutate cluster state (kill a shard, drain, inject spawn faults).
"""

from __future__ import annotations

import os
import signal
import socket
import tempfile
import time

import pytest

from repro import faults
from repro.cluster import ClusterSupervisor
from repro.service import ServiceClient

GOOD = """
program clustered
  input integer :: n = 10
  integer :: i
  real :: a(0:99)
  do i = 1, n
    a(i) = a(i - 1) + 1.0
  end do
  print a(n)
end program
"""

needs_reuseport = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform")


def _boot(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("worker_mode", "thread")
    kwargs.setdefault("drain_timeout", 10.0)
    supervisor = ClusterSupervisor(**kwargs)
    supervisor.start()
    return supervisor


@pytest.fixture(scope="module")
def cluster():
    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("SO_REUSEPORT not available on this platform")
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as cache:
        supervisor = _boot(cache_dir=cache)
        try:
            yield supervisor
        finally:
            supervisor.shutdown()


@needs_reuseport
class TestServing:
    def test_admin_health_sees_all_shards(self, cluster):
        health = ServiceClient(cluster.admin_url).healthz()
        assert health["role"] == "cluster-supervisor"
        assert health["shards"] == 2
        assert health["shards_alive"] == 2
        assert len(health["shard_status"]) == 2

    def test_shared_port_serves_requests(self, cluster):
        client = ServiceClient(cluster.url, timeout=60.0)
        status, doc = client.post_json("/compile", {
            "action": "run", "source": GOOD, "inputs": {"n": 10}})
        assert status == 200
        assert doc["ok"] is True

    def test_shards_have_distinct_identities(self, cluster):
        seen = {}
        for url in cluster.shard_urls:
            health = ServiceClient(url).healthz()
            seen[health["shard_id"]] = health["pid"]
            assert health["uptime_s"] >= 0.0
        assert sorted(seen) == [0, 1]
        assert len(set(seen.values())) == 2  # two real processes
        assert os.getpid() not in seen.values()

    def test_aggregated_metrics_carry_shard_labels(self, cluster):
        # at least one request first, so shard counters exist
        ServiceClient(cluster.url, timeout=60.0).post_json(
            "/compile", {"action": "run", "source": GOOD})
        text = ServiceClient(cluster.admin_url).get("/metrics")[1]
        text = text.decode("utf-8")
        assert "repro_cluster_shards 2" in text
        assert 'shard="0"' in text
        assert 'shard="1"' in text
        # HELP/TYPE headers are deduplicated across shards
        help_lines = [line for line in text.splitlines()
                      if line.startswith("# HELP repro_requests_total")]
        assert len(help_lines) <= 1

    def test_admin_metrics_values_aggregate(self, cluster):
        values = ServiceClient(cluster.admin_url).metrics_values()
        assert values.get("repro_cluster_shards") == 2.0


@needs_reuseport
class TestUptime:
    def test_health_reports_shard_uptime(self, cluster):
        health = ServiceClient(cluster.admin_url).healthz()
        assert health["uptime_s"] >= 0.0
        for shard in health["shard_status"]:
            assert shard["alive"] is True
            assert shard["uptime_s"] is not None
            assert shard["uptime_s"] >= 0.0
            # a live shard cannot have been up longer than its
            # supervisor (monotonic instants share one origin)
            assert shard["uptime_s"] <= health["uptime_s"] + 1e-6

    def test_uptime_survives_wall_clock_step(self, monkeypatch):
        """Regression: uptime must come off the monotonic clock.

        Fake a 7.5 s monotonic advance while the wall clock steps an
        hour *backwards* (an NTP correction mid-scrape).  A wall-clock
        based uptime would report -3592.5 s; the monotonic one reports
        exactly 7.5 s.
        """
        ticks = [1000.0]
        supervisor = ClusterSupervisor(shards=1, port=0,
                                       clock=lambda: ticks[0])
        try:
            handle = supervisor.handles[0]
            handle.ready_at = ticks[0]

            class _Alive:  # stands in for a live shard process
                @staticmethod
                def is_alive():
                    return True

            handle.process = _Alive()
            ticks[0] += 7.5
            monkeypatch.setattr(time, "time",
                                lambda: time.monotonic() - 3600.0)
            health = supervisor.health()
            assert health["uptime_s"] == pytest.approx(7.5)
            assert health["shard_status"][0]["uptime_s"] \
                == pytest.approx(7.5)
            # a dead shard reports no uptime rather than a stale one
            handle.process = None
            assert supervisor.health()["shard_status"][0]["uptime_s"] \
                is None
        finally:
            supervisor._reservation.close()


@needs_reuseport
class TestCrashRestart:
    def test_killed_shard_is_respawned(self):
        supervisor = _boot(backoff_base=0.05, backoff_cap=0.5)
        try:
            victim = supervisor.handles[0]
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if victim.alive and victim.pid != old_pid:
                    break
                time.sleep(0.05)
            assert victim.alive
            assert victim.pid != old_pid
            assert victim.restarts == 1
            assert supervisor.restarts_total >= 1
            # the respawned shard serves traffic again
            health = ServiceClient(victim.direct_url).healthz()
            assert health["shard_id"] == 0
        finally:
            supervisor.shutdown()

    def test_spawn_faults_are_counted_and_survived(self):
        with faults.armed("cluster.spawn:raise:p=1.0:times=1"):
            supervisor = _boot(shards=1, backoff_base=0.05,
                               backoff_cap=0.5)
        try:
            # first spawn attempt failed; the monitor retried after
            # backoff and the shard came up anyway
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if supervisor.handles[0].alive:
                    break
                time.sleep(0.05)
            assert supervisor.handles[0].alive
            assert supervisor.spawn_failures == 1
        finally:
            supervisor.shutdown()


@needs_reuseport
class TestDrain:
    def test_sigterm_fanout_drains_clean(self):
        supervisor = _boot()
        clean = supervisor.shutdown()
        assert clean is True
        assert [h.exit_code for h in supervisor.handles] == [0, 0]
        assert supervisor.wait_stopped(timeout=1.0)

    def test_shutdown_is_idempotent(self):
        supervisor = _boot(shards=1)
        assert supervisor.shutdown() is True
        assert supervisor.shutdown() is True

    def test_admin_shutdown_endpoint(self):
        supervisor = _boot(shards=1)
        try:
            status, doc = ServiceClient(supervisor.admin_url).post_json(
                "/shutdown", {})
            assert status == 202
            assert supervisor.wait_stopped(timeout=30.0)
        finally:
            supervisor.shutdown()
