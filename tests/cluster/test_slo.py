"""The SLO grammar: strict parsing and honest grading."""

from __future__ import annotations

import pytest

from repro.cluster import SloParseError, parse_slo
from repro.cluster.slo import QPS_TOLERANCE


LATENCY = {"p50": 0.004, "p95": 0.020, "p99": 0.040,
           "max": 0.090, "mean": 0.007}


class TestParsing:
    def test_single_clause_with_qps(self):
        spec = parse_slo("p99<50ms@200qps")
        (clause,) = spec.clauses
        assert clause.metric == "p99"
        assert clause.op == "<"
        assert clause.limit_seconds == pytest.approx(0.05)
        assert clause.min_qps == 200.0

    def test_multiple_clauses(self):
        spec = parse_slo("p50<5ms, p99<=80ms@100qps, max<1s")
        assert [c.metric for c in spec.clauses] == ["p50", "p99", "max"]
        assert spec.clauses[1].op == "<="
        assert spec.clauses[2].limit_seconds == 1.0
        assert spec.clauses[0].min_qps is None

    def test_seconds_and_fractional_limits(self):
        (clause,) = parse_slo("mean<=0.5s").clauses
        assert clause.limit_seconds == 0.5

    def test_whitespace_tolerated(self):
        spec = parse_slo("  p95 < 25 ms @ 50 qps ")
        assert spec.clauses[0].min_qps == 50.0

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "p10<50ms",          # unknown metric
        "p99>50ms",          # only upper bounds make sense
        "p99<50",            # missing unit
        "p99<50ms@qps",      # rate without a number
        "p99<50ms@100",      # rate without the qps suffix
        "p99<50ms garbage",  # trailing junk
        "p99<50ms,,p50<1ms",  # empty clause
    ])
    def test_rejects(self, bad):
        with pytest.raises(SloParseError):
            parse_slo(bad)

    def test_parse_error_is_value_error(self):
        # the CLI catches ValueError at the argument boundary
        assert issubclass(SloParseError, ValueError)


class TestGrading:
    def test_passing_spec(self):
        verdict = parse_slo("p99<50ms@200qps").evaluate(LATENCY, 210.0)
        assert verdict["passed"] is True
        (check,) = verdict["checks"]
        assert check["latency_ok"] is True
        assert check["qps_ok"] is True

    def test_latency_violation_fails(self):
        verdict = parse_slo("p99<30ms").evaluate(LATENCY, 500.0)
        assert verdict["passed"] is False
        assert verdict["checks"][0]["latency_ok"] is False

    def test_strict_vs_inclusive_bound(self):
        assert parse_slo("p99<40ms").evaluate(
            LATENCY, 0.0)["passed"] is False
        assert parse_slo("p99<=40ms").evaluate(
            LATENCY, 0.0)["passed"] is True

    def test_qps_tolerance_boundary(self):
        spec = parse_slo("p99<50ms@200qps")
        floor = QPS_TOLERANCE * 200.0
        assert spec.evaluate(LATENCY, floor)["passed"] is True
        assert spec.evaluate(LATENCY, floor - 1.0)["passed"] is False
        failing = spec.evaluate(LATENCY, floor - 1.0)["checks"][0]
        assert failing["latency_ok"] is True  # shed load, not slow
        assert failing["qps_ok"] is False

    def test_all_clauses_must_hold(self):
        spec = parse_slo("p50<5ms, p99<30ms")
        verdict = spec.evaluate(LATENCY, 100.0)
        assert verdict["passed"] is False
        assert [c["passed"] for c in verdict["checks"]] == [True, False]

    def test_missing_metric_is_a_failure_not_a_pass(self):
        verdict = parse_slo("p99<1s").evaluate({}, 100.0)
        assert verdict["passed"] is False
        assert verdict["checks"][0]["actual_seconds"] == float("inf")

    def test_verdict_is_json_shaped(self):
        import json

        verdict = parse_slo("p99<50ms@10qps").evaluate(LATENCY, 12.0)
        round_tripped = json.loads(json.dumps(verdict))
        assert round_tripped["spec"] == "p99<50ms@10qps"
