"""Shard affinity: canonical request keys and rendezvous ranking."""

from __future__ import annotations

from repro.service import canonical_payload_key, rendezvous_rank


TARGETS = ["http://127.0.0.1:9001", "http://127.0.0.1:9002",
           "http://127.0.0.1:9003", "http://127.0.0.1:9004"]


class TestCanonicalKey:
    def test_deterministic(self):
        payload = {"action": "run", "source": "program p\nend program\n"}
        assert canonical_payload_key(payload) == \
            canonical_payload_key(dict(payload))

    def test_key_order_irrelevant(self):
        a = {"action": "run", "source": "x", "inputs": {"n": 3}}
        b = {"inputs": {"n": 3}, "source": "x", "action": "run"}
        assert canonical_payload_key(a) == canonical_payload_key(b)

    def test_loadgen_bookkeeping_excluded(self):
        # tag and sequence identify the *request instance*, not the
        # work — two replays of one program must share a shard
        base = {"action": "run", "source": "x"}
        tagged = dict(base, tag="bench:x", sequence=17)
        assert canonical_payload_key(base) == canonical_payload_key(tagged)

    def test_distinct_work_distinct_keys(self):
        a = canonical_payload_key({"action": "run", "source": "x"})
        b = canonical_payload_key({"action": "run", "source": "y"})
        assert a != b


class TestRendezvousRank:
    def test_full_permutation(self):
        ranked = rendezvous_rank("some-key", TARGETS)
        assert sorted(ranked) == sorted(TARGETS)

    def test_deterministic_and_order_independent(self):
        ranked = rendezvous_rank("some-key", TARGETS)
        assert rendezvous_rank("some-key", list(reversed(TARGETS))) == \
            ranked
        assert rendezvous_rank("some-key", TARGETS) == ranked

    def test_removal_only_remaps_orphans(self):
        # HRW's defining property: dropping one target moves only the
        # keys that preferred it — everyone else keeps their shard
        keys = ["key-%d" % i for i in range(64)]
        before = {k: rendezvous_rank(k, TARGETS)[0] for k in keys}
        removed = TARGETS[0]
        survivors = TARGETS[1:]
        for key in keys:
            after = rendezvous_rank(key, survivors)[0]
            if before[key] != removed:
                assert after == before[key]

    def test_spread_is_not_degenerate(self):
        # sha256 mixing: 256 keys over 4 targets should hit them all
        owners = {rendezvous_rank("key-%d" % i, TARGETS)[0]
                  for i in range(256)}
        assert owners == set(TARGETS)

    def test_fallback_order_is_the_tail(self):
        ranked = rendezvous_rank("k", TARGETS)
        assert len(ranked) == len(TARGETS)
        assert len(set(ranked)) == len(TARGETS)
