"""The acceptance property of the shared artifact store: a cold
program compiles exactly once cluster-wide.

Four shard processes share one ``REPRO_CACHE_DIR``.  The same program
is sent to every shard's direct listener simultaneously; the per-key
``flock`` in the cache layer must serialize the fills so exactly one
shard translates (``repro_backend_compiles_total`` = 1 in the
aggregated metrics) while the rest wait and load the published
artifact.
"""

from __future__ import annotations

import socket
import tempfile
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster import ClusterSupervisor
from repro.service import ServiceClient

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform")

COLD_PROGRAM = """
program coldstart
  integer :: i
  real :: a(100)
  do i = 1, 100
    a(i) = real(i) * 1.5
  end do
  print a(100)
end program
"""


def test_cold_program_compiles_exactly_once_across_four_shards():
    with tempfile.TemporaryDirectory(prefix="repro-sf-") as cache:
        supervisor = ClusterSupervisor(
            shards=4, port=0, workers=2, worker_mode="thread",
            cache_dir=cache, drain_timeout=10.0)
        supervisor.start()
        try:
            payload = {"action": "run", "source": COLD_PROGRAM,
                       "engine": "compiled"}

            def fire(url):
                client = ServiceClient(url, timeout=120.0)
                try:
                    return client.post_json("/compile", dict(payload))
                finally:
                    client.close()

            # one request per shard, released together: every shard is
            # cold, so without the cross-process lock each would
            # translate its own copy
            with ThreadPoolExecutor(len(supervisor.shard_urls)) as pool:
                results = list(pool.map(fire, supervisor.shard_urls))

            assert all(status == 200 for status, _ in results)
            assert all(doc["ok"] is True for _, doc in results)
            # every response agrees on the program's output
            outputs = {tuple(doc["output"]) for _, doc in results}
            assert len(outputs) == 1
            cold = [doc["backend_cached"] for _, doc in results]
            assert cold.count(False) == 1, cold
            assert cold.count(True) == len(results) - 1, cold

            values = ServiceClient(
                supervisor.admin_url).metrics_values()
            compiles = sum(
                value for name, value in values.items()
                if name.startswith("repro_backend_compiles_total"))
            assert compiles == 1.0
        finally:
            assert supervisor.shutdown() is True
