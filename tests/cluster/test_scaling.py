"""The scaling-curve renderer and its marked-section bookkeeping."""

from __future__ import annotations

from repro.cluster.scaling import (SECTION_BEGIN, SECTION_END,
                                   record_section, render_section)


def _point(shards, qps, rps):
    return {"shards": shards, "qps_target": qps, "requests": 60,
            "throughput_rps": rps, "p50_s": 0.004, "p99_s": 0.020,
            "transport_errors": 0, "unaccounted": 0}


POINTS = [_point(1, 50.0, 20.0), _point(2, 50.0, 41.0),
          _point(4, 50.0, 49.5)]


class TestRender:
    def test_section_is_marked_and_tabular(self):
        section = render_section(POINTS)
        lines = section.splitlines()
        assert lines[0] == SECTION_BEGIN
        assert lines[-1] == SECTION_END
        assert any("shards" in line and "p99_ms" in line
                   for line in lines)
        assert len([line for line in lines
                    if not line.startswith("#")
                    and "shards" not in line]) == len(POINTS)

    def test_speedup_is_relative_to_one_shard(self):
        section = render_section(POINTS)
        assert "(2.05x vs 1 shard)" in section
        assert "(2.48x vs 1 shard)" in section
        one_shard_row = [line for line in section.splitlines()
                         if line.strip().startswith("1 ")][0]
        assert "vs 1 shard" not in one_shard_row

    def test_cpu_count_recorded(self):
        assert "cpu core" in render_section(POINTS)


class TestRecord:
    def test_creates_file_with_section(self, tmp_path):
        path = tmp_path / "scaling.txt"
        record_section(str(path), render_section(POINTS))
        text = path.read_text()
        assert text.count(SECTION_BEGIN) == 1
        assert text.count(SECTION_END) == 1

    def test_replaces_only_its_own_section(self, tmp_path):
        path = tmp_path / "scaling.txt"
        path.write_text("elimination harness output\nrow row row\n")
        record_section(str(path), render_section(POINTS))
        record_section(str(path), render_section(POINTS[:1]))
        text = path.read_text()
        assert text.startswith("elimination harness output")
        assert "row row row" in text
        assert text.count(SECTION_BEGIN) == 1  # replaced, not stacked
        assert "(2.05x" not in text  # old rows gone

    def test_survives_the_benchmark_writer(self, tmp_path):
        # benchmarks/conftest.write_result rewrites everything outside
        # marked sections; emulate its contract here
        path = tmp_path / "scaling.txt"
        record_section(str(path), render_section(POINTS))
        before = path.read_text()
        preserved = []
        keep = False
        for line in before.splitlines():
            if line.startswith("# >>> repro:"):
                keep = True
            if keep:
                preserved.append(line)
            if line.startswith("# <<< repro:"):
                keep = False
        path.write_text("fresh harness text\n\n"
                        + "\n".join(preserved) + "\n")
        text = path.read_text()
        assert text.count(SECTION_BEGIN) == 1
        assert "fresh harness text" in text
