"""The consistent-hashing client: affinity, fallback, aggregation.

These tests use two standalone single-process services as "shards" —
shard routing is purely client-side, so nothing here needs
SO_REUSEPORT or real forked shard processes.
"""

from __future__ import annotations

import pytest

from repro.service import (ServiceClient, ShardedServiceClient,
                           canonical_payload_key, rendezvous_rank)

from ..conftest import ReservedPorts, make_service

GOOD = """\
program routed
  integer :: i
  real :: a(10)
  do i = 1, 10
    a(i) = real(i)
  end do
  print a(10)
end program
"""


def _payload_preferring(target, urls):
    """A run payload whose rendezvous rank puts ``target`` first."""
    for n in range(1, 64):
        payload = {"action": "run", "source": GOOD, "inputs": {"n": n}}
        key = canonical_payload_key(payload)
        if rendezvous_rank(key, urls)[0] == target:
            return payload
    raise AssertionError("no payload preferred %r" % target)


@pytest.fixture
def two_services():
    first, second = make_service(), make_service()
    yield first, second
    first.shutdown()
    second.shutdown()


class TestAffinity:
    def test_same_payload_same_shard(self, two_services):
        urls = [svc.url for svc in two_services]
        client = ShardedServiceClient(urls, timeout=30.0)
        try:
            payload = {"action": "run", "source": GOOD}
            first = client.client_for(payload)
            assert all(client.client_for(dict(payload)) is first
                       for _ in range(5))
        finally:
            client.close()

    def test_requests_land_on_the_preferred_shard(self, two_services):
        first, second = two_services
        urls = [first.url, second.url]
        client = ShardedServiceClient(urls, timeout=30.0)
        try:
            payload = _payload_preferring(second.url, urls)
            status, doc = client.post_json("/compile", payload)
            assert status == 200
            values = ServiceClient(second.url).metrics_values()
            assert values.get("repro_requests_total"
                              '{endpoint="/compile",status="200"}') == 1.0
            assert client.fallbacks == 0
        finally:
            client.close()


class TestFallback:
    def test_dead_preferred_shard_falls_back(self, two_services):
        live = two_services[0]
        with ReservedPorts(1) as reserved:
            dead = "http://127.0.0.1:%d" % reserved.ports[0]
            urls = [live.url, dead]
            client = ShardedServiceClient(urls, timeout=5.0)
            try:
                payload = _payload_preferring(dead, urls)
                status, doc = client.post_json("/compile", payload)
                assert status == 200
                assert doc["ok"] in (True, False)
                assert client.fallbacks == 1
            finally:
                client.close()

    def test_all_shards_dead_raises(self):
        with ReservedPorts(2) as reserved:
            urls = ["http://127.0.0.1:%d" % port
                    for port in reserved.ports]
            client = ShardedServiceClient(urls, timeout=2.0)
            with pytest.raises(OSError):
                client.post_json("/compile",
                                 {"action": "run", "source": GOOD})


class TestAggregation:
    def test_metrics_values_sum_across_shards(self, two_services):
        first, second = two_services
        for svc in (first, second):
            ServiceClient(svc.url, timeout=30.0).post_json(
                "/compile", {"action": "run", "source": GOOD})
        client = ShardedServiceClient([first.url, second.url],
                                      timeout=30.0)
        try:
            values = client.metrics_values()
            key = ('repro_requests_total'
                   '{endpoint="/compile",status="200"}')
            assert values.get(key) == 2.0
        finally:
            client.close()
