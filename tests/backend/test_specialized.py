"""Tests for the tier-2 specialized back-end (flat source +
NumPy-vectorized affine loops).

The parity bar has two parts:

* the specialized engine must agree with the direct-threaded engine on
  *every* counter (both run destructed SSA, so even ``phis`` matches);
* both back-ends must agree with the interpreter on the bench-parity
  fields (``phis`` legitimately differs 2:1 — destruction charges the
  pc-temp copy and the landing copy per phi).
"""

import pickle

import pytest

from repro.backend import compile_to_python, compile_to_specialized
from repro.benchsuite import BENCH_PARITY_FIELDS, all_programs
from repro.checks import OptimizerOptions, Scheme, optimize_module
from repro.errors import InterpError, RangeTrap, StepLimitError
from repro.interp import Machine
from repro.pipeline import compile_source
from repro.ssa import destruct_ssa

from ..conftest import lower_ssa

ALL_COUNTERS = ("instructions", "checks", "guarded_checks",
                "guard_skipped", "traps", "phis")


def _clone(module):
    return pickle.loads(pickle.dumps(module))


def ssa_module(source, options=None):
    module = lower_ssa(source)
    if options is not None:
        optimize_module(module, options)
    return module


def specialized(source, options=None):
    """Compile straight to the tier-2 engine (consumes a private SSA
    clone, as the cache does)."""
    return compile_to_specialized(_clone(ssa_module(source, options)))


def tri_parity(source, inputs=None, options=None):
    """Run all three engines; assert the full parity contract."""
    module = ssa_module(source, options)
    machine = Machine(_clone(module), inputs)
    machine.run()
    threaded_mod = _clone(module)
    for function in threaded_mod:
        destruct_ssa(function)
    threaded = compile_to_python(threaded_mod).run(inputs)
    spec = compile_to_specialized(_clone(module)).run(inputs)
    assert spec.output == threaded.output == machine.output
    for field in ALL_COUNTERS:
        assert getattr(spec.counters, field) == \
            getattr(threaded.counters, field), field
    for field in BENCH_PARITY_FIELDS:
        assert getattr(spec.counters, field) == \
            getattr(machine.counters, field), field
    return spec


class TestTriEngineParity:
    def test_loop_program(self, loop_program):
        tri_parity(loop_program, {"n": 12})

    def test_arithmetic_semantics(self):
        tri_parity("""
program p
  input integer :: a = -7, b = 2
  real :: x
  x = 1.5
  print a / b
  print mod(a, b)
  print abs(a) * 2
  print min(a, b)
  print x / 2.0
  print sqrt(4.0)
end program
""")

    def test_branches_and_while(self):
        tri_parity("""
program p
  integer :: i, s
  s = 0
  i = 0
  while (i < 9) do
    i = i + 1
    if (mod(i, 2) == 0) then
      s = s + i
    else
      s = s - 1
    end if
  end while
  print s
end program
""")

    def test_subroutine_calls(self):
        tri_parity("""
program p
  input integer :: n = 6
  real :: a(10)
  call fill(n, a)
  print a(3)
end program
subroutine fill(n, a)
  integer :: n, i
  real :: a(10)
  do i = 1, n
    a(i) = real(i) * 1.5
  end do
end subroutine
""")

    @pytest.mark.parametrize("scheme", [Scheme.NI, Scheme.LLS, Scheme.ALL])
    def test_optimized_programs(self, loop_program, scheme):
        tri_parity(loop_program, {"n": 10},
                   OptimizerOptions(scheme=scheme))

    @pytest.mark.parametrize("index", range(10))
    def test_benchmark_suite(self, index):
        program = all_programs()[index]
        tri_parity(program.source, program.test_inputs)


VECTORIZABLE = """
program vec
  input integer :: n = 50
  integer :: i
  real :: a(100), b(100)
  do i = 1, n
    a(i) = real(i) * 1.5
  end do
  do i = 1, n
    b(i) = a(i) * 2.0 + 1.0
  end do
  print b(n)
end program
"""


class TestVectorization:
    def test_kernels_emitted_for_affine_loops(self):
        compiled = specialized(VECTORIZABLE)
        assert "def _vk0" in compiled.source
        assert "def _vk1" in compiled.source
        assert "_vload" in compiled.source

    def test_vectorized_parity(self):
        tri_parity(VECTORIZABLE, {"n": 50})
        tri_parity(VECTORIZABLE, {"n": 1})

    def test_recurrence_falls_back_at_runtime(self, loop_program):
        # a(i) = a(i-1) + 1.0 reads the cell the previous iteration
        # wrote: the kernel's runtime disjointness hazard must reject
        # it and the scalar loop reproduces the interpreter exactly
        compiled = specialized(loop_program)
        assert "_vdis" in compiled.source
        tri_parity(loop_program, {"n": 30})

    def test_zero_trip_vector_loop(self):
        source = """
program p
  input integer :: n = 0
  integer :: i
  real :: a(100)
  do i = 1, n
    a(i) = real(i) * 1.5
  end do
  print a(1)
end program
"""
        spec = tri_parity(source, {"n": 0})
        assert spec.counters.traps == 0

    def test_trap_inside_vector_loop(self):
        # the hazard prologue sees the final index overrunning the
        # bound and bails before any observable effect; the scalar
        # replay traps at exactly the interpreter's point
        source = """
program p
  input integer :: n = 60
  integer :: i
  real :: a(50)
  do i = 1, n
    a(i) = real(i)
  end do
  print a(1)
end program
"""
        module = ssa_module(source)
        machine = Machine(_clone(module), {"n": 60})
        with pytest.raises(RangeTrap):
            machine.run()
        compiled = compile_to_specialized(_clone(module))
        with pytest.raises(RangeTrap) as info:
            compiled.run({"n": 60})
        runtime = info.value.runtime
        assert runtime.counters.checks == machine.counters.checks
        assert list(runtime.output) == list(machine.output)

    def test_step_limit_inside_vector_loop(self):
        module = ssa_module(VECTORIZABLE)
        machine = Machine(_clone(module), {"n": 50}, 100)
        with pytest.raises(StepLimitError):
            machine.run()
        compiled = compile_to_specialized(_clone(module))
        with pytest.raises(StepLimitError):
            compiled.run({"n": 50}, max_steps=100)

    def test_division_hazard_falls_back(self):
        # b(i) = c / a(i) with a zero element: the kernel's divisor
        # hazard rejects vector division; the scalar loop raises the
        # interpreter's division-by-zero error
        source = """
program p
  input integer :: n = 10
  integer :: i
  real :: a(20), b(20)
  do i = 1, n
    b(i) = 1.0 / a(i)
  end do
  print b(1)
end program
"""
        module = ssa_module(source)
        machine = Machine(_clone(module), {"n": 10})
        error = None
        try:
            machine.run()
        except InterpError as exc:
            error = exc
        assert error is not None
        compiled = compile_to_specialized(_clone(module))
        with pytest.raises(InterpError) as info:
            compiled.run({"n": 10})
        assert str(info.value) == str(error)

    def test_reduction_loop_vectorizes(self):
        # the accumulator phi is replayed as a sequential fold over the
        # vectorized operands, preserving the scalar association order
        # bit for bit
        source = """
program p
  input integer :: n = 40
  integer :: i
  real :: a(50), b(50), s
  do i = 1, n
    a(i) = real(i) * 0.25
    b(i) = real(i) * 0.5
  end do
  s = 1.0
  do i = 1, n
    s = s + a(i) + b(i) * b(i)
  end do
  print s
end program
"""
        compiled = specialized(source)
        assert "for _j in range(_t):" in compiled.source
        tri_parity(source, {"n": 40})
        tri_parity(source, {"n": 0})

    def test_reduction_subtraction(self):
        source = """
program p
  input integer :: n = 30
  integer :: i
  real :: a(50), s
  do i = 1, n
    a(i) = real(i) * 0.125
  end do
  s = 100.0
  do i = 1, n
    s = s - a(i)
  end do
  print s
end program
"""
        compiled = specialized(source)
        assert "for _j in range(_t):" in compiled.source
        tri_parity(source, {"n": 30})

    def test_multiplicative_accumulator_stays_scalar(self):
        # s = s * a(i) is not a fold the kernel can replay (only
        # left-leaning add/sub keep the association order): the
        # planner bails and the loop runs scalar, still in parity
        source = """
program p
  input integer :: n = 20
  integer :: i
  real :: a(50), s
  do i = 1, n
    a(i) = 1.0 + real(i) * 0.01
  end do
  s = 1.0
  do i = 1, n
    s = s * a(i)
  end do
  print s
end program
"""
        compiled = specialized(source)
        assert "for _j in range(_t):" not in compiled.source
        tri_parity(source, {"n": 20})

    def test_trap_inside_reduction_loop(self):
        # the bounds hazard fires before the fold touches the
        # accumulator; the scalar replay traps at the interpreter's
        # exact point with the partial sum intact
        source = """
program p
  input integer :: n = 60
  integer :: i
  real :: a(50), s
  s = 0.0
  do i = 1, n
    s = s + a(i)
  end do
  print s
end program
"""
        module = ssa_module(source)
        machine = Machine(_clone(module), {"n": 60})
        with pytest.raises(RangeTrap):
            machine.run()
        compiled = compile_to_specialized(_clone(module))
        with pytest.raises(RangeTrap) as info:
            compiled.run({"n": 60})
        runtime = info.value.runtime
        assert runtime.counters.checks == machine.counters.checks
        assert list(runtime.output) == list(machine.output)


class TestFallbacks:
    def test_call_in_loop_is_not_vectorized(self):
        source = """
program p
  input integer :: n = 5
  integer :: i
  real :: a(10)
  do i = 1, n
    call bump(i, a)
  end do
  print a(n)
end program
subroutine bump(i, a)
  integer :: i
  real :: a(10)
  a(i) = real(i)
end subroutine
"""
        compiled = specialized(source)
        assert "_vk" not in compiled.source
        tri_parity(source, {"n": 5})

    def test_int_array_loop_is_not_vectorized(self):
        source = """
program p
  input integer :: n = 8
  integer :: i, k(20)
  do i = 1, n
    k(i) = i * 3
  end do
  print k(n)
end program
"""
        compiled = specialized(source)
        assert "_vk" not in compiled.source
        tri_parity(source, {"n": 8})

    def test_flat_source_has_real_control_flow(self, loop_program):
        compiled = specialized(loop_program)
        assert "while True:" in compiled.source
        # flat emission succeeded: no per-block closure dispatch
        assert "_next = _next()" not in compiled.source


class TestPipelineEntry:
    def test_run_compiled_engine_dispatch(self, loop_program):
        program = compile_source(loop_program)
        interp = program.run({"n": 9})
        spec = program.run_compiled({"n": 9}, engine="specialized")
        threaded = program.run_compiled({"n": 9})
        assert spec.output == threaded.output == interp.output
        assert spec.counters.checks == interp.counters.checks
        assert spec.counters.instructions == interp.counters.instructions

    def test_cache_keys_are_engine_scoped(self, loop_program):
        from repro.pipeline.cache import BackendCache

        program = compile_source(loop_program)
        cache = BackendCache()
        threaded_key = cache.key(program.module)
        spec_key = cache.key(program.module, "specialized")
        assert threaded_key != spec_key
        assert spec_key.endswith("-sp1")

    def test_cache_round_trips_specialized_module(self, loop_program,
                                                  tmp_path):
        from repro.backend.specialized import CompiledSpecializedModule
        from repro.pipeline.cache import BackendCache

        program = compile_source(loop_program)
        warm = BackendCache(disk_dir=str(tmp_path))
        first = warm.compiled(program.module, engine="specialized")
        assert isinstance(first, CompiledSpecializedModule)
        cold = BackendCache(disk_dir=str(tmp_path))
        second = cold.compiled(program.module, engine="specialized")
        assert isinstance(second, CompiledSpecializedModule)
        assert cold.disk_hits == 1
        assert second.source == first.source
        runtime = second.run({"n": 7})
        interp = program.run({"n": 7})
        assert runtime.output == interp.output
