"""Differential tests for REAL subscript/store coercion parity.

The interpreter's :class:`~repro.interp.values.ArrayStorage` coerces on
every store (``int()`` truncation toward zero for INT elements) and
bounds-faults inside the accessor; the back-ends duplicate both on the
guarded fast path and must fall back to the same accessor when an index
escapes the fast-path window.  These tests pin the three engines to
identical behavior on the cases where those paths could drift:
negative fractional index expressions, implicit REAL->INT stores, and
out-of-bounds accesses taking the fallback accessor.
"""

import pickle

import pytest

from repro.backend import compile_to_python, compile_to_specialized
from repro.errors import InterpError, RangeTrap
from repro.interp import Machine
from repro.ir import Check
from repro.ssa import destruct_ssa

from ..conftest import lower_ssa
from .test_specialized import tri_parity


def _clone(module):
    return pickle.loads(pickle.dumps(module))


def _engines(module):
    """The two back-end modules for one SSA module."""
    threaded_mod = _clone(module)
    for function in threaded_mod:
        destruct_ssa(function)
    return (compile_to_python(threaded_mod),
            compile_to_specialized(_clone(module)))


class TestNegativeFractionalIndices:
    def test_truncation_toward_zero_in_subscript(self):
        # int(-2.5) is -2 (not floor's -3) in every engine; the
        # resulting index lands on the fast path in-bounds
        tri_parity("""
program p
  input real :: x = -2.5
  integer :: i
  real :: a(5)
  i = int(x) + 4
  a(i) = x * 2.0
  print a(i)
  print int(x)
  print int(-0.5) + 1
end program
""", {"x": -2.5})

    @pytest.mark.parametrize("x", [-2.5, -0.25, 0.75, 2.5])
    def test_fractional_index_sweep(self, x):
        tri_parity("""
program p
  input real :: x = 0.0
  integer :: i
  real :: a(0:5)
  i = int(x) + 3
  a(i) = x
  print a(i)
end program
""", {"x": x})

    def test_out_of_bounds_fractional_index_traps_identically(self):
        module = lower_ssa("""
program p
  input real :: x = -9.5
  integer :: i
  real :: a(5)
  i = int(x) + 4
  a(i) = 1.0
  print a(1)
end program
""")
        machine = Machine(_clone(module), {"x": -9.5})
        with pytest.raises(RangeTrap) as interp_info:
            machine.run()
        for compiled in _engines(module):
            with pytest.raises(RangeTrap) as info:
                compiled.run({"x": -9.5})
            # messages legitimately differ (the interpreter includes
            # the evaluated value; the back-ends print the static
            # check), but the typed error, the trap-time output, the
            # counters, and the failing check must all agree
            assert "array a, lower bound" in str(info.value)
            assert "array a, lower bound" in str(interp_info.value)
            runtime = info.value.runtime
            assert list(runtime.output) == list(machine.output)
            # per-block accounting: the back-end charges the whole
            # block's checks on entry, so a mid-block trap leaves it
            # at or ahead of the interpreter's exact count
            assert runtime.counters.checks >= machine.counters.checks
            assert runtime.counters.traps == machine.counters.traps


class TestRealToIntStores:
    def test_implicit_store_truncates_on_fast_path(self):
        # k(i) = x stores int(x): truncation toward zero, matching
        # ArrayStorage.store, on the guarded in-bounds fast path
        tri_parity("""
program p
  input real :: x = -2.5
  integer :: k(5)
  k(2) = x
  k(3) = x * 3.0
  k(4) = 0.0 - x
  print k(2)
  print k(3)
  print k(4)
end program
""", {"x": -2.5})

    def test_store_in_loop(self):
        tri_parity("""
program p
  input integer :: n = 7
  integer :: i, k(10)
  real :: x
  do i = 1, n
    x = real(i) * 1.5 - 4.0
    k(i) = x
  end do
  print k(1)
  print k(n)
end program
""", {"n": 7})

    def test_int_to_real_store_parity(self):
        tri_parity("""
program p
  input integer :: n = 3
  real :: a(5)
  a(2) = n
  a(3) = n * 2
  print a(2)
  print a(3)
end program
""", {"n": 3})


class TestOutOfBoundsFallback:
    def _unchecked(self, source):
        """SSA module with every Check deleted: accesses reach the
        storage accessor's independent safety net."""
        module = lower_ssa(source)
        for function in module:
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, Check):
                        block.remove(inst)
        return module

    def test_oob_real_to_int_store_faults_identically(self):
        module = self._unchecked("""
program p
  input real :: x = -2.5
  integer :: k(5)
  k(9) = x
  print k(1)
end program
""")
        machine = Machine(_clone(module), {"x": -2.5})
        error = None
        try:
            machine.run()
        except InterpError as exc:
            error = exc
        assert error is not None
        for compiled in _engines(module):
            with pytest.raises(InterpError) as info:
                compiled.run({"x": -2.5})
            assert str(info.value) == str(error)

    def test_oob_load_faults_identically(self):
        module = self._unchecked("""
program p
  input integer :: i = 12
  real :: a(10)
  print a(i)
end program
""")
        machine = Machine(_clone(module), {"i": 12})
        error = None
        try:
            machine.run()
        except InterpError as exc:
            error = exc
        assert error is not None
        for compiled in _engines(module):
            with pytest.raises(InterpError) as info:
                compiled.run({"i": 12})
            assert str(info.value) == str(error)
