"""Back-end/interpreter parity for limits, mangling, and odd names.

Regression tests for two parity bugs: the old ``_mangle`` collapsed
every non-alphanumeric character to ``_`` (so the SSA temp ``i.1``
collided with a user scalar named ``i_1``), and the old back-end
enforced neither the call-depth limit nor the ``max_steps`` fuel the
interpreter enforces.
"""

import pytest

from repro.backend import compile_to_python
from repro.backend.pybackend import _escape, _fn_ref, _mangle
from repro.errors import CallDepthError, StepLimitError
from repro.interp import Machine
from repro.ssa import destruct_ssa

from ..conftest import lower_ssa


def destructed(source):
    module = lower_ssa(source)
    for function in module:
        destruct_ssa(function)
    return module


def run_both(source, inputs=None, max_steps=50_000_000):
    """(interpreter machine, back-end runtime) for one program."""
    module = destructed(source)
    machine = Machine(module, inputs, max_steps)
    machine.run()
    runtime = compile_to_python(module).run(inputs, max_steps=max_steps)
    return machine, runtime


RECURSION = """
program p
  input integer :: n = 500
  call down(n)
end program
subroutine down(k)
  integer :: k
  if (k > 0) then
    call down(k - 1)
  end if
end subroutine
"""


class TestMangling:
    def test_dot_and_underscore_do_not_collide(self):
        # the historical bug: both mangled to v_i_1
        assert _mangle("i.1") != _mangle("i_1")

    def test_escape_is_injective_on_adversarial_pairs(self):
        names = ["i", "i_", "i.", "i_1", "i.1", "i__1", "i._1", "i_.1",
                 "a%b", "a_b", "a.b", "x", "x.10", "x.1.0", "π",
                 "π.1", "1up", "_"]
        escaped = [_escape(name) for name in names]
        assert len(set(escaped)) == len(names)

    def test_escape_yields_identifiers(self):
        for name in ["i.1", "a%b", "π", "1up", "_", "loop-var"]:
            assert ("v_" + _escape(name)).isidentifier()
            assert ("fn_" + _escape(name)).isidentifier()

    def test_function_refs_share_the_escape(self):
        assert _fn_ref("do.it") != _fn_ref("do_it")

    def test_ssa_temp_vs_user_scalar_regression(self):
        # ``i`` is reassigned, so SSA versions it (i.1, i.2, ...);
        # ``i_1`` is a distinct live scalar.  Under the collapsing
        # mangle the generated code silently merged them.
        machine, runtime = run_both("""
program p
  integer :: i, i_1
  i = 1
  i_1 = 100
  i = i + 1
  print i
  print i_1
end program
""")
        assert machine.output == [2, 100]
        assert runtime.output == [2, 100]
        assert runtime.counters.instructions == \
            machine.counters.instructions


class TestCallDepthParity:
    def test_both_engines_trap_runaway_recursion(self):
        module = destructed(RECURSION)
        machine = Machine(module, None)
        with pytest.raises(CallDepthError) as interp_error:
            machine.run()
        with pytest.raises(CallDepthError) as backend_error:
            compile_to_python(module).run()
        assert str(interp_error.value) == str(backend_error.value)
        assert "call depth exceeded %d" % Machine.MAX_CALL_DEPTH \
            in str(interp_error.value)

    def test_recursion_below_the_limit_succeeds_on_both(self):
        machine, runtime = run_both("""
program p
  input integer :: n = 150
  call count(n)
end program
subroutine count(k)
  integer :: k
  if (k > 0) then
    call count(k - 1)
  end if
  if (k < 1) then
    print k
  end if
end subroutine
""")
        assert machine.output == [0]
        assert runtime.output == [0]

    def test_depth_error_is_typed(self):
        # services and the oracle key on the subclass, not the message
        from repro.errors import InterpError

        assert issubclass(CallDepthError, InterpError)
        assert issubclass(StepLimitError, InterpError)


class TestStepLimitParity:
    LOOP = """
program p
  input integer :: n = 100000
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
"""

    def test_both_engines_exhaust_small_fuel(self):
        module = destructed(self.LOOP)
        machine = Machine(module, None, 1000)
        with pytest.raises(StepLimitError) as interp_error:
            machine.run()
        with pytest.raises(StepLimitError) as backend_error:
            compile_to_python(module).run(max_steps=1000)
        assert str(interp_error.value) == str(backend_error.value)
        assert "1000 steps" in str(interp_error.value)

    def test_default_budget_matches_interpreter(self):
        import inspect

        from repro.backend.pybackend import CompiledPythonModule

        interp_default = inspect.signature(
            Machine.__init__).parameters["max_steps"].default
        backend_default = inspect.signature(
            CompiledPythonModule.run).parameters["max_steps"].default
        assert interp_default == backend_default == 50_000_000

    def test_zero_trip_loop_runs_clean_on_both(self):
        machine, runtime = run_both("""
program p
  input integer :: n = 0
  integer :: i, s
  s = 0
  do i = 1, n
    s = s + i
  end do
  print s
end program
""")
        assert machine.output == [0]
        assert runtime.output == [0]
        assert runtime.counters.instructions == \
            machine.counters.instructions

    def test_ample_fuel_runs_clean_on_both(self):
        machine, runtime = run_both(self.LOOP, {"n": 200},
                                    max_steps=50_000)
        assert machine.output == runtime.output == [20100]
