"""Tests for the Python back-end (instrumented code generation)."""

import pytest

from repro.backend import compile_to_python
from repro.benchsuite import all_programs
from repro.checks import OptimizerOptions, Scheme, optimize_module
from repro.errors import IRError, InterpError, RangeTrap
from repro.interp import Machine
from repro.pipeline import compile_source
from repro.ssa import destruct_ssa

from ..conftest import lower_ssa


def destructed(source, options=None):
    module = lower_ssa(source)
    if options is not None:
        optimize_module(module, options)
    for function in module:
        destruct_ssa(function)
    return module


def parity(source, inputs=None, options=None):
    module = destructed(source, options)
    machine = Machine(module, inputs)
    machine.run()
    runtime = compile_to_python(module).run(inputs)
    assert runtime.output == machine.output
    assert runtime.counters.checks == machine.counters.checks
    assert runtime.counters.instructions == machine.counters.instructions
    assert runtime.counters.guarded_checks == \
        machine.counters.guarded_checks
    return runtime


class TestParity:
    def test_loop_program(self, loop_program):
        parity(loop_program, {"n": 12})

    def test_arithmetic_semantics(self):
        parity("""
program p
  input integer :: a = -7, b = 2
  real :: x
  x = 1.5
  print a / b
  print mod(a, b)
  print abs(a) * 2
  print min(a, b)
  print x / 2.0
  print sqrt(4.0)
end program
""")

    def test_branches_and_while(self):
        parity("""
program p
  integer :: i, s
  s = 0
  i = 0
  while (i < 9) do
    i = i + 1
    if (mod(i, 2) == 0) then
      s = s + i
    else
      s = s - 1
    end if
  end while
  print s
end program
""")

    def test_subroutine_calls(self):
        parity("""
program p
  input integer :: n = 6
  real :: a(10)
  call fill(n, a)
  print a(3)
end program
subroutine fill(n, a)
  integer :: n, i
  real :: a(10)
  do i = 1, n
    a(i) = real(i) * 1.5
  end do
end subroutine
""")

    def test_adjustable_arrays(self):
        parity("""
program p
  input integer :: n = 4
  real :: a(8)
  call work(n, a)
  print a(2)
end program
subroutine work(n, a)
  integer :: n
  real :: a(n)
  a(2) = 5.0
end subroutine
""")

    @pytest.mark.parametrize("scheme", [Scheme.NI, Scheme.LLS, Scheme.ALL])
    def test_optimized_programs(self, loop_program, scheme):
        parity(loop_program, {"n": 10},
               OptimizerOptions(scheme=scheme))

    @pytest.mark.parametrize("index", range(10))
    def test_benchmark_suite(self, index):
        program = all_programs()[index]
        parity(program.source, program.test_inputs)

    def test_cond_check_guard_semantics(self):
        # zero-trip loop: the Cond-check's guard fails, no trap
        source = """
program p
  input integer :: n = 0
  integer :: i
  real :: a(5)
  do i = 1, n
    a(i) = 1.0
  end do
  print 1
end program
"""
        runtime = parity(source, {"n": 0},
                         OptimizerOptions(scheme=Scheme.LLS))
        assert runtime.counters.traps == 0


class TestTraps:
    def test_range_trap_raised(self):
        module = destructed("""
program p
  input integer :: i = 11
  real :: a(10)
  a(i) = 1.0
end program
""")
        compiled = compile_to_python(module)
        with pytest.raises(RangeTrap):
            compiled.run({"i": 11})

    def test_trap_counted(self):
        module = destructed("""
program p
  input integer :: i = 11
  real :: a(10)
  a(i) = 1.0
end program
""")
        compiled = compile_to_python(module)
        try:
            compiled.run({"i": 11})
        except RangeTrap:
            pass

    def test_storage_safety_net(self):
        # delete the checks, then compile: out-of-bounds still faults
        module = destructed("""
program p
  input integer :: i = 11
  real :: a(10)
  a(i) = 1.0
end program
""")
        from repro.ir import Check
        for function in module:
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, Check):
                        block.remove(inst)
        compiled = compile_to_python(module)
        with pytest.raises(InterpError):
            compiled.run({"i": 11})


class TestRequirements:
    def test_rejects_ssa_input(self, loop_program):
        module = lower_ssa(loop_program)
        with pytest.raises(IRError):
            compile_to_python(module)

    def test_generated_source_is_inspectable(self, loop_program):
        module = destructed(loop_program)
        compiled = compile_to_python(module)
        assert "def fn_loopy" in compiled.source
        assert "_counters.checks" in compiled.source

    def test_run_compiled_pipeline_entry(self, loop_program):
        program = compile_source(loop_program)
        interp = program.run({"n": 9})
        runtime = program.run_compiled({"n": 9})
        assert runtime.output == interp.output
        assert runtime.counters.checks == interp.counters.checks

    def test_run_compiled_reusable(self, loop_program):
        program = compile_source(loop_program)
        first = program.run_compiled({"n": 3})
        second = program.run_compiled({"n": 5})
        assert first.counters.checks <= second.counters.checks
