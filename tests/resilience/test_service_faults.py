"""Service-level resilience: each fault point armed at p=1.0 must
produce its documented degraded behavior (a bounded error status,
never a hang or a wrong result), and a fault-free replay of the same
request must return a body identical to an undisturbed run.

Bodies are compared through :func:`canonical`, which nulls the two
volatile fields (``phases`` wall-clock timings and ``frontend_cached``
cache state) — everything semantic (output, counters, traps, engine)
must match byte-for-byte.  See docs/RESILIENCE.md.
"""

import json
import threading
import time

import pytest

from repro import faults
from repro.service import ServiceClient, WorkerPool

from ..conftest import make_service

pytestmark = pytest.mark.resilience


def program(name, bound=8):
    """A tiny valid program with a unique name.

    Worker threads share the process-wide pipeline cache, so each test
    that needs the frontend/backend to actually *run* (to reach the
    ``frontend.parse`` / ``backend.compile`` fault points) uses its own
    source text.
    """
    return (
        "program %s\n"
        "  input integer :: n = 4\n"
        "  integer :: i\n"
        "  real :: a(%d)\n"
        "  do i = 1, n\n"
        "    a(i) = real(i) + 0.5\n"
        "  end do\n"
        "  print a(n)\n"
        "end program\n" % (name, bound))


def canonical(doc):
    """Response body with volatile metadata nulled, as canonical bytes."""
    doc = dict(doc)
    for volatile in ("phases", "frontend_cached"):
        doc.pop(volatile, None)
    return json.dumps(doc, sort_keys=True).encode("utf-8")


@pytest.fixture
def service():
    svc = make_service()
    yield svc
    if not svc._stopped.is_set():
        svc.shutdown()


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestAcceptFault:
    def test_accept_fault_rejects_then_replay_is_identical(
            self, service, client):
        payload = {"action": "run", "source": program("acceptfault"),
                   "inputs": {"n": 3}}
        client.post_json("/compile", payload)  # warm the shared cache
        _, baseline = client.post_json("/compile", payload)

        faults.arm("service.accept:raise:p=1.0")
        status, doc = client.post_json("/compile", payload)
        assert status == 500
        assert "injected fault at service.accept" in doc["error"]
        # rejected up front: counted, and no worker ever ran
        values = client.metrics_values()
        assert values.get(
            'repro_requests_rejected_total{reason="fault"}') == 1.0

        faults.disarm()
        status, replay = client.post_json("/compile", payload)
        assert status == 200
        # both fault-free responses were cache hits, so even the
        # frontend_cached flag matches; only timings are volatile
        assert replay["frontend_cached"] == baseline["frontend_cached"]
        assert canonical(replay) == canonical(baseline)

    def test_healthz_reports_armed_plane(self, client):
        faults.arm("service.accept:raise:p=0.5:seed=3")
        health = client.healthz()
        assert any(entry.startswith("service.accept:raise")
                   for entry in health["faults"])
        faults.disarm()
        assert client.healthz()["faults"] == []


class TestWorkerSideFaults:
    """frontend.parse / backend.compile raise inside a worker: the job
    layer maps the escape to a bounded 500 body (never a raw traceback,
    never a poisoned pool)."""

    def test_parse_fault_then_replay(self, service, client):
        payload = {"action": "run", "source": program("parsefault"),
                   "inputs": {"n": 3}}
        with faults.armed("frontend.parse:raise:p=1.0"):
            status, doc = client.post_json("/compile", payload)
        assert status == 500
        assert "injected fault at frontend.parse" in doc["error"]

        status, replay = client.post_json("/compile", payload)
        assert status == 200
        _, again = client.post_json("/compile", payload)
        assert canonical(replay) == canonical(again)
        assert replay["output"] == [3.5]

    def test_compile_fault_then_replay(self, service, client):
        payload = {"action": "run", "source": program("compilefault"),
                   "inputs": {"n": 3}, "engine": "compiled"}
        with faults.armed("backend.compile:raise:p=1.0"):
            status, doc = client.post_json("/compile", payload)
        assert status == 500
        assert "injected fault at backend.compile" in doc["error"]

        status, replay = client.post_json("/compile", payload)
        assert status == 200
        assert replay["engine"] == "compiled"
        assert replay["output"] == [3.5]

    def test_interp_engine_never_reaches_backend_compile(
            self, service, client):
        # the backend point only guards the compiled engine; the
        # interpreter path must be untouched by an armed plane
        payload = {"action": "run", "source": program("interponly"),
                   "inputs": {"n": 3}}
        with faults.armed("backend.compile:raise:p=1.0"):
            status, doc = client.post_json("/compile", payload)
        assert status == 200
        assert doc["output"] == [3.5]


class TestSpawnFault:
    def test_spawn_fault_fails_pool_construction(self):
        faults.arm("workerpool.spawn:raise:p=1.0")
        with pytest.raises(faults.FaultError):
            WorkerPool(workers=1, mode="process")

    def test_rebuild_failure_degrades_to_threads_once(self, capsys):
        # ProcessPoolExecutor defers forking until first submit, so an
        # unarmed process-mode pool is cheap to construct
        pool = WorkerPool(workers=1, mode="process")
        try:
            faults.arm("workerpool.spawn:raise:p=1.0")
            pool._rebuild(RuntimeError("worker died"))
            assert pool.restarts == 1
            assert pool.mode == "thread"  # degraded, not dead
            assert "degrading to threads" in capsys.readouterr().err

            # the degraded pool serves requests without rebuilding again,
            # even with the spawn point still armed
            payload = {"action": "run", "source": program("spawnfault"),
                       "inputs": {"n": 2}}
            for _ in range(3):
                status, body = pool.result(payload)
                assert status == 200
                assert body["output"] == [2.5]
            assert pool.restarts == 1
        finally:
            pool.shutdown()

    def test_thread_mode_never_fires_spawn(self):
        faults.arm("workerpool.spawn:raise:p=1.0")
        pool = WorkerPool(workers=1, mode="thread")
        try:
            status, _ = pool.result({"action": "run",
                                     "source": program("threadspawn"),
                                     "inputs": {"n": 2}})
            assert status == 200
        finally:
            pool.shutdown()


class TestDrainUnderFaults:
    def test_drain_completes_with_faults_armed(self, tmp_path):
        """Graceful shutdown must still drain and exit cleanly while
        accept faults reject traffic and every cache write corrupts."""
        svc = make_service(queue_limit=8)
        client = ServiceClient(svc.url, timeout=30.0)
        payload = {"action": "run", "source": program("drainfault"),
                   "inputs": {"n": 3}}
        faults.arm("service.accept:raise:p=0.5:seed=7,"
                   "diskcache.write:corrupt:p=1.0")
        statuses = [client.post_json("/compile", payload)[0]
                    for _ in range(8)]
        assert set(statuses) <= {200, 500}
        assert 200 in statuses and 500 in statuses  # p=0.5, seed=7

        svc.shutdown()
        assert svc.wait_stopped(timeout=10.0)
        assert svc.health()["in_flight"] == 0
        with pytest.raises(OSError):
            client.get("/healthz")

    def test_inflight_request_survives_drain(self):
        """A request admitted before shutdown() completes during the
        drain window even when later arrivals are being faulted."""
        svc = make_service(workers=2)
        client = ServiceClient(svc.url, timeout=30.0)
        # a deliberately long-running request (50k loop iterations) so
        # it is still executing when the plane is armed and the drain
        # begins
        payload = {"action": "run",
                   "source": program("draininflight", bound=60000),
                   "inputs": {"n": 50000}}
        results = []

        def fire():
            results.append(client.post_json("/compile", payload))

        worker = threading.Thread(target=fire)
        worker.start()
        time.sleep(0.05)  # let the request reach admission
        faults.arm("service.accept:raise:p=1.0")
        svc.shutdown()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert svc.wait_stopped(timeout=10.0)
        status, doc = results[0]
        assert status == 200
        assert doc["output"] == [50000.5]


@pytest.mark.slow
class TestProcessPoolKill:
    """End-to-end crash/rebuild/recover with real worker processes.

    ``backend.compile:kill`` is delivered through the environment so
    each freshly spawned worker re-arms itself (the pool's initializer
    re-reads REPRO_FAULTS — required under the fork start method).
    """

    def test_kill_rebuild_and_recover(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "backend.compile:kill")
        svc = make_service(worker_mode="process", workers=1,
                           request_timeout=120.0)
        try:
            client = ServiceClient(svc.url, timeout=120.0)
            compiled = {"action": "run", "source": program("killfault"),
                        "inputs": {"n": 3}, "engine": "compiled"}
            interp = {"action": "run", "source": program("killfault"),
                      "inputs": {"n": 3}}

            # the armed worker dies mid-request; the pool rebuilds once
            # and retries, the replacement (re-armed from env) dies too,
            # and the failure surfaces as a bounded 500 — not a hang
            status, doc = client.post_json("/compile", compiled)
            assert status == 500
            assert "Broken" in doc["error"]
            assert svc.pool.restarts == 1

            # the pool is broken after the failed retry: the next
            # submit rebuilds it, and the interpreter path (which never
            # reaches backend.compile) completes normally
            status, doc = client.post_json("/compile", interp)
            assert status == 200
            assert doc["output"] == [3.5]
            assert svc.pool.restarts == 2

            # disarm via the environment: the worker armed at spawn
            # still kills once more, but its replacement reads the
            # clean environment and the original request now succeeds
            monkeypatch.delenv(faults.ENV_VAR)
            status, doc = client.post_json("/compile", compiled)
            assert status == 200
            assert doc["engine"] == "compiled"
            assert doc["output"] == [3.5]
            assert svc.pool.restarts == 3

            # fault-free replay matches a fresh fault-free execution
            _, again = client.post_json("/compile", compiled)
            assert canonical(doc) == canonical(again)
        finally:
            if not svc._stopped.is_set():
                svc.shutdown()
