"""Shared fixtures for the resilience suite.

Every test in this package runs against a clean fault plane: the
autouse fixture disarms before and after each test so no armed point
can leak between tests (or into the rest of the suite).
"""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_fault_plane():
    faults.disarm()
    yield
    faults.disarm()
