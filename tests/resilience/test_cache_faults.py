"""Disk-cache resilience: injected write/read faults and corruption
must always degrade to a cache miss — never to a failed compile, and
never, ever to wrong results."""

import os

import pytest

from repro import faults
from repro.ir.printer import format_module
from repro.pipeline.cache import (BackendCache, FrontendCache,
                                  _seal_entry, _unseal_entry)

pytestmark = pytest.mark.resilience

SOURCE = """\
program cachefault
  input integer :: n = 6
  integer :: i
  real :: a(8)
  do i = 1, n
    a(i) = real(i) * 2.0
  end do
  print a(n)
end program
"""


def frontend_ir(cache):
    return format_module(cache.frontend(SOURCE))


@pytest.fixture
def reference():
    """The fault-free frontend result everything is compared against."""
    return frontend_ir(FrontendCache())


class TestSealedEntryFormat:
    def test_round_trip(self):
        blob = b"some pickled module"
        assert _unseal_entry(_seal_entry(blob)) == blob

    @pytest.mark.parametrize("mangle", [
        lambda data: data[: len(data) // 2],          # truncation
        lambda data: data[:-1],                        # one byte short
        lambda data: data[:40] + b"\xff" + data[41:],  # one flipped byte
        lambda data: b"",                              # empty file
        lambda data: b"not a sealed entry at all",     # foreign content
        lambda data: data[len(b"RPRC1\n"):],           # frame stripped
    ])
    def test_any_damage_is_detected(self, mangle):
        sealed = _seal_entry(b"payload bytes of a module pickle")
        assert _unseal_entry(mangle(sealed)) is None

    def test_disk_round_trip_counts_a_disk_hit(self, tmp_path):
        writer = FrontendCache(disk_dir=str(tmp_path))
        expected = frontend_ir(writer)
        reader = FrontendCache(disk_dir=str(tmp_path))
        assert frontend_ir(reader) == expected
        assert reader.disk_hits == 1
        assert reader.frontend_compiles == 0

    def test_legacy_unsealed_entry_is_a_miss(self, tmp_path):
        # an entry written by an older version (raw pickle, no frame)
        # must be recompiled, not unpickled blind
        cache = FrontendCache(disk_dir=str(tmp_path))
        path = cache._disk_path(cache.key(SOURCE))
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04raw legacy pickle bytes")
        frontend_ir(cache)
        assert cache.disk_hits == 0
        assert cache.frontend_compiles == 1


class TestFrontendCacheWriteFaults:
    def test_corrupt_write_degrades_to_miss(self, tmp_path, reference):
        with faults.armed("diskcache.write:corrupt:p=1.0:seed=3"):
            writer = FrontendCache(disk_dir=str(tmp_path))
            assert frontend_ir(writer) == reference  # compile unharmed
        # the poisoned entry must never be *served*
        reader = FrontendCache(disk_dir=str(tmp_path))
        assert frontend_ir(reader) == reference
        assert reader.disk_hits == 0
        assert reader.frontend_compiles == 1

    def test_enospc_write_fails_silently(self, tmp_path, reference):
        with faults.armed("diskcache.write:raise:p=1.0"):
            writer = FrontendCache(disk_dir=str(tmp_path))
            assert frontend_ir(writer) == reference
        published = [name for name in os.listdir(str(tmp_path))
                     if not name.endswith(".lock")]
        assert published == []  # nothing published (lock sidecar aside)
        reader = FrontendCache(disk_dir=str(tmp_path))
        assert frontend_ir(reader) == reference  # cold miss, recompile

    def test_recovery_after_disarm(self, tmp_path, reference):
        with faults.armed("diskcache.write:corrupt:p=1.0"):
            frontend_ir(FrontendCache(disk_dir=str(tmp_path)))
        # fault-free writer repairs the entry in place
        frontend_ir(FrontendCache(disk_dir=str(tmp_path)))
        reader = FrontendCache(disk_dir=str(tmp_path))
        assert frontend_ir(reader) == reference
        assert reader.disk_hits == 1


class TestFrontendCacheReadFaults:
    def test_read_fault_degrades_to_miss(self, tmp_path, reference):
        frontend_ir(FrontendCache(disk_dir=str(tmp_path)))  # valid entry
        with faults.armed("diskcache.read:raise:p=1.0"):
            reader = FrontendCache(disk_dir=str(tmp_path))
            assert frontend_ir(reader) == reference
            assert reader.disk_hits == 0
            assert reader.frontend_compiles == 1

    def test_read_corruption_degrades_to_miss(self, tmp_path, reference):
        # bytes mangled on the way *in* (bad sector, torn read): the
        # integrity frame catches it regardless of the mangle shape
        frontend_ir(FrontendCache(disk_dir=str(tmp_path)))
        for seed in range(6):  # cover all three mangle modes
            with faults.armed(
                    "diskcache.read:corrupt:p=1.0:seed=%d" % seed):
                reader = FrontendCache(disk_dir=str(tmp_path))
                assert frontend_ir(reader) == reference
                assert reader.disk_hits == 0

    def test_on_disk_corruption_never_served(self, tmp_path, reference):
        # corrupt the actual file, not just the read path
        cache = FrontendCache(disk_dir=str(tmp_path))
        frontend_ir(cache)
        path = cache._disk_path(cache.key(SOURCE))
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        reader = FrontendCache(disk_dir=str(tmp_path))
        assert frontend_ir(reader) == reference
        assert reader.disk_hits == 0


class TestBackendCacheFaults:
    def _translated_source(self, cache, tmp_path):
        module = FrontendCache().frontend(SOURCE)
        return cache.compiled(module).source

    def test_corrupt_write_degrades_to_miss(self, tmp_path):
        expected = self._translated_source(BackendCache(), tmp_path)
        with faults.armed("diskcache.write:corrupt:p=1.0:seed=9"):
            writer = BackendCache(disk_dir=str(tmp_path))
            assert self._translated_source(writer, tmp_path) == expected
        reader = BackendCache(disk_dir=str(tmp_path))
        assert self._translated_source(reader, tmp_path) == expected
        assert reader.disk_hits == 0
        assert reader.translations == 1

    def test_read_fault_degrades_to_miss(self, tmp_path):
        expected = self._translated_source(
            BackendCache(disk_dir=str(tmp_path)), tmp_path)
        with faults.armed("diskcache.read:raise:p=1.0"):
            reader = BackendCache(disk_dir=str(tmp_path))
            assert self._translated_source(reader, tmp_path) == expected
            assert reader.disk_hits == 0
            assert reader.translations == 1

    def test_fault_free_disk_hit_still_works(self, tmp_path):
        expected = self._translated_source(
            BackendCache(disk_dir=str(tmp_path)), tmp_path)
        reader = BackendCache(disk_dir=str(tmp_path))
        assert self._translated_source(reader, tmp_path) == expected
        assert reader.disk_hits == 1
        assert reader.translations == 0
