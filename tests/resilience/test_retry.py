"""Retry-policy resilience: only safe outcomes (429, 503, transport
errors) are retried, backoff schedules are seed-deterministic, the
``Retry-After`` header is honored as a floor, and a wall-clock
deadline is never blown by a backoff sleep."""

import threading
import time

import pytest

from repro import faults
from repro.service import RetryPolicy, ServiceClient, WorkerPool
from repro.service.client import TRAP_SOURCE

from ..conftest import ReservedPorts, make_service

pytestmark = pytest.mark.resilience

QUICK_SOURCE = """\
program retryquick
  input integer :: n = 3
  integer :: i
  real :: a(8)
  do i = 1, n
    a(i) = real(i) + 0.5
  end do
  print a(n)
end program
"""


def scripted(client, steps):
    """Replace ``client._request_full`` with a canned transcript.

    Each step is either ``(status, body, headers)`` or an exception to
    raise; the last step repeats forever.  Returns the call log.
    """
    steps = list(steps)
    calls = []

    def fake(method, path, payload=None, timeout=None):
        calls.append({"method": method, "path": path, "timeout": timeout})
        step = steps.pop(0) if len(steps) > 1 else steps[0]
        if isinstance(step, Exception):
            raise step
        return step

    client._request_full = fake
    return calls


class TestRetryPolicyUnit:
    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    @pytest.mark.parametrize("status,retryable", [
        (None, True),   # transport error: no response was produced
        (429, True),    # queue full: rejected before a worker ran
        (503, True),    # draining: ditto
        (200, False),   # final — even when the body reports a trap
        (400, False), (404, False), (422, False),
        (500, False),   # the worker may have executed; not idempotent
        (504, False),   # the worker may STILL be executing
    ])
    def test_should_retry(self, status, retryable):
        assert RetryPolicy().should_retry(status) is retryable

    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        assert [policy.delay(n) for n in range(5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_delay_schedule_is_seed_deterministic(self):
        def schedule(seed):
            policy = RetryPolicy(jitter=1.0, seed=seed)
            return [policy.delay(n) for n in range(6)]

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_retry_after_is_a_floor_not_a_cap(self):
        policy = RetryPolicy(base_delay=0.05, jitter=0.0, max_delay=2.0)
        assert policy.delay(0, retry_after=1.5) == 1.5
        # a tiny Retry-After never shrinks the computed backoff
        assert policy.delay(3, retry_after=0.001) == policy.delay(3)


class TestScriptedRetries:
    def client(self):
        return ServiceClient("http://127.0.0.1:1")  # never dialed

    def test_retries_503_honoring_retry_after(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        client = self.client()
        scripted(client, [
            (503, b'{"error": "draining"}', {"Retry-After": "1.5"}),
            (200, b'{"ok": true}', {}),
        ])
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        status, body = client.post_with_retry("/compile", {}, policy)
        assert status == 200
        assert client.retries == 1
        assert sleeps == [1.5]  # header floor beat the 0.01s backoff

    @pytest.mark.parametrize("status", [200, 400, 422, 500, 504])
    def test_non_retryable_statuses_are_final(self, status, monkeypatch):
        monkeypatch.setattr(time, "sleep",
                            lambda _: pytest.fail("must not sleep"))
        client = self.client()
        calls = scripted(client, [(status, b"{}", {})])
        got, _ = client.post_with_retry("/compile", {}, RetryPolicy())
        assert got == status
        assert len(calls) == 1
        assert client.retries == 0

    def test_exhausted_attempts_return_last_response(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _: None)
        client = self.client()
        calls = scripted(client, [(429, b"{}", {})])
        policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
        status, _ = client.post_with_retry("/compile", {}, policy)
        assert status == 429
        assert len(calls) == 3
        assert client.retries == 2

    def test_deadline_skips_backoff_that_would_overrun(self, monkeypatch):
        monkeypatch.setattr(time, "sleep",
                            lambda _: pytest.fail("deadline must veto"))
        client = self.client()
        calls = scripted(client, [(503, b"{}", {})])
        # backoff (10s) dwarfs the 0.25s budget: one attempt, no sleep
        policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0)
        status, _ = client.post_with_retry("/compile", {}, policy,
                                           deadline=0.25)
        assert status == 503
        assert len(calls) == 1
        assert calls[0]["timeout"] <= 0.25  # socket timeout capped too

    def test_deadline_reraises_transport_error(self):
        client = self.client()
        calls = scripted(client, [ConnectionRefusedError("refused")])
        policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0)
        with pytest.raises(OSError):
            client.post_with_retry("/compile", {}, policy, deadline=0.25)
        assert len(calls) == 1

    def test_no_policy_means_single_shot(self):
        client = self.client()  # retry=None and no per-call policy
        calls = scripted(client, [(503, b"{}", {})])
        status, _ = client.post_with_retry("/compile", {})
        assert status == 503
        assert len(calls) == 1
        assert client.retries == 0


class TestRetriesAgainstRealService:
    def test_transport_errors_retried_then_reraised(self):
        # a held, bound-but-not-listening socket refuses connections
        # for the whole block — no close-then-reuse race
        with ReservedPorts(1) as reserved:
            url = "http://127.0.0.1:%d" % reserved.ports[0]
            policy = RetryPolicy(max_attempts=3, base_delay=0.01,
                                 jitter=0.0)
            client = ServiceClient(url, timeout=5.0, retry=policy)
            with pytest.raises(OSError):
                client.post_with_retry("/compile",
                                       {"action": "run", "source": "x"})
            assert client.retries == 2

    def test_trap_result_is_never_retried(self):
        svc = make_service()
        try:
            client = ServiceClient(svc.url, timeout=30.0,
                                   retry=RetryPolicy(max_attempts=4))
            status, doc = client.post_json_with_retry(
                "/compile", {"action": "run", "source": TRAP_SOURCE})
            assert status == 200
            assert doc["ok"] is False
            assert "range check failed" in doc["trap"]
            assert client.retries == 0  # a trap is a final outcome
        finally:
            svc.shutdown()

    def test_queue_full_retried_until_admitted(self):
        """With the single admission slot pinned by a blocked request,
        a retrying client rides 429s until the slot frees, then wins."""
        entered = threading.Event()
        release = threading.Event()

        def task(payload):
            if payload.get("source") == "BLOCK":
                entered.set()
                release.wait(10.0)
            return 200, {"ok": True, "output": [3.5]}

        pool = WorkerPool(workers=2, mode="thread", task=task)
        svc = make_service(pool=pool, queue_limit=1)
        try:
            blocker = ServiceClient(svc.url, timeout=30.0)
            hold = threading.Thread(target=blocker.post_json, args=(
                "/compile", {"action": "run", "source": "BLOCK"}))
            hold.start()
            assert entered.wait(5.0)

            threading.Timer(0.25, release.set).start()
            policy = RetryPolicy(max_attempts=10, base_delay=0.1,
                                 multiplier=1.0, jitter=0.0)
            client = ServiceClient(svc.url, timeout=30.0, retry=policy)
            status, doc = client.post_json_with_retry(
                "/compile", {"action": "run", "source": QUICK_SOURCE})
            assert status == 200
            assert doc["ok"] is True
            assert client.retries >= 1  # saw at least one 429 first
            hold.join(timeout=5.0)
            assert not hold.is_alive()
        finally:
            release.set()
            svc.shutdown()

    def test_draining_503_carries_retry_after_header(self):
        svc = make_service()
        try:
            client = ServiceClient(svc.url, timeout=30.0)
            svc._draining.set()  # drain state without tearing down HTTP
            status, body, headers = client._request_full(
                "POST", "/compile",
                {"action": "run", "source": QUICK_SOURCE})
            assert status == 503
            assert headers.get("Retry-After") == "1"
        finally:
            svc._draining.clear()
            svc.shutdown()

    def test_injected_accept_fault_is_not_retried(self):
        """An injected 500 is indistinguishable from a real worker
        failure, so the policy must treat it as final."""
        svc = make_service()
        try:
            client = ServiceClient(
                svc.url, timeout=30.0,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01))
            with faults.armed("service.accept:raise:p=1.0"):
                status, doc = client.post_json_with_retry(
                    "/compile", {"action": "run", "source": QUICK_SOURCE})
            assert status == 500
            assert client.retries == 0
        finally:
            svc.shutdown()
