"""Unit tests for the fault-injection plane itself: spec parsing,
determinism, probability/cap semantics, and zero-overhead disarm."""

import os
import subprocess
import sys
import time

import pytest

from repro import faults

pytestmark = pytest.mark.resilience

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(faults.__file__))))


def _run_python(code, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    env.update(extra_env or {})
    return subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          timeout=60)


class TestSpecParsing:
    def test_minimal_spec(self):
        points = faults.parse_spec("service.accept:raise")
        point = points["service.accept"]
        assert point.action == "raise"
        assert point.probability == 1.0
        assert point.times is None
        assert point.exc == "fault"

    def test_full_spec(self):
        points = faults.parse_spec(
            "diskcache.write:corrupt:p=0.25:seed=7:times=3")
        point = points["diskcache.write"]
        assert point.action == "corrupt"
        assert point.probability == 0.25
        assert point.seed == 7
        assert point.times == 3

    def test_multiple_points(self):
        points = faults.parse_spec(
            "service.accept:raise, frontend.parse:delay:delay_ms=1")
        assert set(points) == {"service.accept", "frontend.parse"}

    def test_diskcache_defaults_to_io_error(self):
        for name in ("diskcache.read", "diskcache.write"):
            point = faults.parse_spec("%s:raise" % name)[name]
            assert point.exc == "io"
            error = point.exception()
            assert isinstance(error, faults.FaultIOError)
            assert isinstance(error, OSError)

    def test_non_disk_defaults_to_fault_error(self):
        point = faults.parse_spec("backend.compile:raise")[
            "backend.compile"]
        assert isinstance(point.exception(), faults.FaultError)

    def test_exc_override(self):
        point = faults.parse_spec("service.accept:raise:exc=io")[
            "service.accept"]
        assert isinstance(point.exception(), faults.FaultIOError)

    @pytest.mark.parametrize("bad", [
        "",
        "   ,  ",
        "service.accept",                    # no action
        "nosuch.point:raise",                # unknown point
        "service.accept:explode",            # unknown action
        "service.accept:raise:p=2.0",        # probability out of range
        "service.accept:raise:p=-0.1",
        "service.accept:raise:p=banana",     # unparsable float
        "service.accept:raise:times=-1",
        "service.accept:raise:frequency=1",  # unknown key
        "service.accept:raise:p",            # not key=value
        "service.accept:raise:exc=kaboom",
        "service.accept:raise:delay_ms=-5",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(bad)

    def test_spec_error_is_a_value_error(self):
        # the CLI maps ValueError to a usage exit
        assert issubclass(faults.FaultSpecError, ValueError)


class TestDisarmedIsNoop:
    def test_fire_is_noop(self):
        assert not faults.enabled()
        for name in faults.FAULT_POINTS:
            faults.fire(name)  # must not raise, sleep, or exit

    def test_corrupt_bytes_is_identity(self):
        payload = b"precious bytes"
        assert faults.corrupt_bytes("diskcache.write", payload) is payload

    def test_describe_empty(self):
        assert faults.describe() == []


class TestArming:
    def test_arm_and_disarm_one_point(self):
        faults.arm("service.accept:raise")
        with pytest.raises(faults.FaultError):
            faults.fire("service.accept")
        faults.fire("frontend.parse")  # other points stay no-ops
        faults.disarm("service.accept")
        assert not faults.enabled()
        faults.fire("service.accept")

    def test_arm_merges(self):
        faults.arm("service.accept:raise")
        faults.arm("frontend.parse:raise")
        assert len(faults.describe()) == 2

    def test_armed_context_restores_previous_plane(self):
        faults.arm("service.accept:raise")
        with faults.armed("frontend.parse:raise"):
            # exactly the scoped spec, not a merge
            faults.fire("service.accept")
            with pytest.raises(faults.FaultError):
                faults.fire("frontend.parse")
        with pytest.raises(faults.FaultError):
            faults.fire("service.accept")

    def test_armed_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.armed("service.accept:raise"):
                raise RuntimeError("boom")
        assert not faults.enabled()

    def test_arm_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "service.accept:raise")
        faults.arm_from_env()
        assert faults.enabled()
        # env semantics are "exactly this", so an unset var disarms —
        # what a freshly forked worker needs after the parent delenvs
        monkeypatch.delenv(faults.ENV_VAR)
        faults.arm_from_env()
        assert not faults.enabled()


class TestFiringSemantics:
    def test_p_one_always_fires(self):
        faults.arm("service.accept:raise:p=1.0")
        for _ in range(10):
            with pytest.raises(faults.FaultError):
                faults.fire("service.accept")

    def test_p_zero_never_fires(self):
        faults.arm("service.accept:raise:p=0.0")
        for _ in range(100):
            faults.fire("service.accept")

    def test_times_caps_firings(self):
        faults.arm("service.accept:raise:times=2")
        fired = 0
        for _ in range(10):
            try:
                faults.fire("service.accept")
            except faults.FaultError:
                fired += 1
        assert fired == 2

    def test_probability_pattern_is_seed_deterministic(self):
        def pattern(seed):
            faults.disarm()
            faults.arm("service.accept:raise:p=0.5:seed=%d" % seed)
            outcomes = []
            for _ in range(32):
                try:
                    faults.fire("service.accept")
                    outcomes.append(0)
                except faults.FaultError:
                    outcomes.append(1)
            return outcomes

        first, second = pattern(11), pattern(11)
        assert first == second
        assert 0 < sum(first) < 32  # actually probabilistic
        assert pattern(12) != first  # seed matters

    def test_delay_sleeps(self):
        faults.arm("frontend.parse:delay:delay_ms=30")
        started = time.perf_counter()
        faults.fire("frontend.parse")
        assert time.perf_counter() - started >= 0.025

    def test_corrupt_action_never_raises_from_fire(self):
        faults.arm("diskcache.write:corrupt")
        faults.fire("diskcache.write")  # corrupt points only mangle


class TestCorruption:
    def test_corrupt_changes_bytes(self):
        faults.arm("diskcache.write:corrupt:seed=1")
        payload = b"x" * 256
        assert faults.corrupt_bytes("diskcache.write", payload) != payload

    def test_corrupt_deterministic_per_seed(self):
        def mangle(seed):
            faults.disarm()
            faults.arm("diskcache.write:corrupt:seed=%d" % seed)
            return [faults.corrupt_bytes("diskcache.write", b"y" * 128)
                    for _ in range(8)]

        assert mangle(5) == mangle(5)
        assert mangle(5) != mangle(6)

    def test_corrupt_respects_probability_and_times(self):
        faults.arm("diskcache.write:corrupt:times=1")
        payload = b"z" * 64
        assert faults.corrupt_bytes("diskcache.write", payload) != payload
        # cap reached: identity from here on
        assert faults.corrupt_bytes("diskcache.write", payload) == payload

    def test_corrupt_empty_payload(self):
        faults.arm("diskcache.write:corrupt")
        assert faults.corrupt_bytes("diskcache.write", b"") == b"\x00"


class TestKillAction:
    def test_kill_exits_with_kill_exit_code(self):
        # must observe from outside: the action is os._exit
        code = ("import repro.faults as faults\n"
                "faults.arm('frontend.parse:kill')\n"
                "faults.fire('frontend.parse')\n"
                "print('survived')\n")
        proc = _run_python(code)
        assert proc.returncode == faults.KILL_EXIT_CODE
        assert "survived" not in proc.stdout

    def test_env_var_arms_at_import(self):
        code = ("import repro.faults as faults\n"
                "assert faults.enabled(), 'env spec must auto-arm'\n"
                "try:\n"
                "    faults.fire('service.accept')\n"
                "except faults.FaultError:\n"
                "    print('armed-and-fired')\n")
        proc = _run_python(
            code, extra_env={faults.ENV_VAR: "service.accept:raise"})
        assert proc.returncode == 0, proc.stderr
        assert "armed-and-fired" in proc.stdout
