"""Two real processes contending for one artifact-store key.

The in-process cache tests prove thread safety; these prove the
*cross-process* story behind the sharded cluster: a shared
``REPRO_CACHE_DIR``, per-key ``flock`` single-flight, and — when the
lock or the disk layer is sabotaged — graceful degradation to
duplicate work with identical, correct results.  Every child is a
genuine ``subprocess`` (its own interpreter, its own caches); the
parent synchronizes starts with a "go" file both children poll.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.resilience

SOURCE = """
program raced
  integer :: i, j
  real :: a(200), b(200)
  do i = 1, 200
    a(i) = real(i)
  end do
  do j = 1, 200
    b(j) = a(j) * 2.0 + 1.0
  end do
  print b(200)
end program
"""

CHILD = r"""
import json, os, sys, time

go = sys.argv[1]
deadline = time.time() + 30.0
while not os.path.exists(go):
    if time.time() > deadline:
        raise SystemExit("no go signal")
    time.sleep(0.002)

from repro import faults
from repro.pipeline.cache import shared_backend_cache, shared_cache
from repro.service.jobs import execute_request

faults.arm_from_env()
status, body = execute_request({
    "action": "run", "source": sys.argv[2], "engine": "compiled"})
backend = shared_backend_cache()
frontend = shared_cache()
print(json.dumps({
    "status": status,
    "ok": body.get("ok"),
    "output": body.get("output"),
    "error": body.get("error"),
    "backend_cached": body.get("backend_cached"),
    "lock_waits": backend.lock_waits + frontend.lock_waits,
    "lock_degraded": backend.lock_degraded + frontend.lock_degraded,
}))
"""


def _race(cache_dir, go_path, faults_by_child=("", "")):
    """Start one child per fault spec, release them together."""
    children = []
    for spec in faults_by_child:
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
                   PYTHONPATH="src")
        if spec:
            env["REPRO_FAULTS"] = spec
        else:
            env.pop("REPRO_FAULTS", None)
        children.append(subprocess.Popen(
            [sys.executable, "-c", CHILD, str(go_path), SOURCE],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            cwd=os.path.join(os.path.dirname(__file__), "..", "..")))
    time.sleep(0.1)  # let both reach the spin-wait
    with open(go_path, "w") as handle:
        handle.write("go")
    reports = []
    for child in children:
        out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err.decode("utf-8", "replace")
        reports.append(json.loads(out.decode("utf-8")))
    return reports


def _entries(cache_dir):
    return [name for name in os.listdir(cache_dir)
            if not name.endswith(".lock")]


class TestExactlyOnceAcrossProcesses:
    def test_cold_key_compiles_in_exactly_one_process(self, tmp_path):
        cache = tmp_path / "store"
        cache.mkdir()
        a, b = _race(cache, tmp_path / "go")
        assert a["status"] == 200 and b["status"] == 200
        assert a["output"] == b["output"] == [401.0]
        # the flock serialized the fills: one cold translate, one
        # cached load — never two compiles, never zero
        assert sorted([a["backend_cached"], b["backend_cached"]]) \
            == [False, True]
        assert a["lock_degraded"] == b["lock_degraded"] == 0

    def test_published_entries_are_loadable(self, tmp_path):
        cache = tmp_path / "store"
        cache.mkdir()
        _race(cache, tmp_path / "go")
        assert _entries(cache)  # something was published
        # a third, fresh process serves both layers from disk
        (report,) = _race(cache, tmp_path / "go2", faults_by_child=("",))
        assert report["output"] == [401.0]
        assert report["backend_cached"] is True


class TestWriteFaultsDegradeToDuplicateWork:
    def test_failed_publish_means_both_compile_same_answer(
            self, tmp_path):
        cache = tmp_path / "store"
        cache.mkdir()
        spec = "diskcache.write:raise:p=1.0"
        a, b = _race(cache, tmp_path / "go", faults_by_child=(spec, spec))
        assert a["status"] == 200 and b["status"] == 200
        # neither publish landed, so neither process could load the
        # other's artifact — duplicate work, identical results
        assert a["backend_cached"] is False
        assert b["backend_cached"] is False
        assert a["output"] == b["output"] == [401.0]

    def test_torn_entry_is_rejected_not_served(self, tmp_path):
        cache = tmp_path / "store"
        cache.mkdir()
        # the first process publishes corrupted bytes; the RPRC1
        # header/checksum makes the second treat them as a miss
        a, = _race(cache, tmp_path / "go",
                   faults_by_child=("diskcache.write:corrupt:p=1.0",))
        assert a["status"] == 200 and a["backend_cached"] is False
        b, = _race(cache, tmp_path / "go2", faults_by_child=("",))
        assert b["status"] == 200
        assert b["backend_cached"] is False  # recompiled, not poisoned
        assert b["output"] == a["output"] == [401.0]


class TestUnusableLockDegrades:
    def test_lock_fault_still_yields_correct_results(self, tmp_path):
        cache = tmp_path / "store"
        cache.mkdir()
        a, b = _race(cache, tmp_path / "go",
                     faults_by_child=("cache.lock:raise:p=1.0",
                                      "cache.lock:raise:p=1.0"))
        assert a["status"] == 200 and b["status"] == 200
        assert a["output"] == b["output"] == [401.0]
        # whoever filled cold had to attempt (and fail) the lock; the
        # other child may have raced past it to a clean disk hit
        assert a["lock_degraded"] + b["lock_degraded"] >= 1
        # duplicate work is allowed; wrong or missing results are not
        assert False in (a["backend_cached"], b["backend_cached"])

    def test_lock_path_collision_degrades_not_fails(self, tmp_path):
        # a directory squatting on the lock sidecar's path makes
        # os.open(O_RDWR) fail with EISDIR; acquire() must treat that
        # exactly like contention it cannot arbitrate: skip the lock,
        # do the work locally
        from repro.pipeline.cache import FrontendCache

        cache = tmp_path / "store"
        cache.mkdir()
        probe = FrontendCache(disk_dir=str(cache))
        lock_path = probe._disk_path(probe.key(SOURCE, True, False)) \
            + ".lock"
        os.makedirs(lock_path)
        a, = _race(cache, tmp_path / "go", faults_by_child=("",))
        assert a["status"] == 200
        assert a["output"] == [401.0]
        assert a["lock_degraded"] >= 1
        assert os.path.isdir(lock_path)  # never deleted, never opened
