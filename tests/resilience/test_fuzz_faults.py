"""The differential oracle with disk-cache write faults armed.

A corrupted (or failed) cache write must be *semantically invisible*:
generated programs compile to the same modules, execute to the same
outputs, and count the same dynamic checks as a fault-free run.  The
oracle proves that end to end — any divergence caused by a poisoned
cache entry would surface as an output-mismatch or count-regression
failure here.
"""

import pytest

from repro import faults
from repro.errors import RangeTrap
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import Oracle, config_by_label
from repro.fuzz.runner import fuzz_one, run_campaign
from repro.interp.machine import Machine
from repro.pipeline.cache import FrontendCache
from repro.pipeline.driver import compile_source

pytestmark = pytest.mark.resilience

WRITE_FAULTS = "diskcache.write:corrupt:p=1.0:seed=5"
SEEDS = (0, 1, 2)


def _single_config():
    return [config_by_label()["PRX-LLS"]]


class TestOracleUnderCacheFaults:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_check_passes_with_and_without_faults(self, seed, tmp_path):
        source = generate_program(seed)
        clean = Oracle(configs=_single_config(), engines=False,
                       cache_dir=str(tmp_path / "clean"))
        faulted = Oracle(configs=_single_config(), engines=False,
                         cache_dir=str(tmp_path / "faulted"),
                         faults_spec=WRITE_FAULTS)
        assert clean.check(source, seed=seed) is None
        assert faulted.check(source, seed=seed) is None

    def test_read_faults_are_also_invisible(self, tmp_path):
        source = generate_program(7)
        oracle = Oracle(configs=_single_config(), engines=False,
                        cache_dir=str(tmp_path),
                        faults_spec="diskcache.read:corrupt:p=1.0:seed=2")
        oracle.check(source, seed=7)  # populate, reads corrupted
        assert oracle.check(source, seed=7) is None

    @pytest.mark.parametrize("seed", SEEDS)
    def test_outputs_and_check_counts_unchanged(self, seed, tmp_path):
        """Directly compare one configuration's execution between a
        fault-free compile and one whose every cache write corrupts."""
        source = generate_program(seed)
        options = _single_config()[0]

        def run(cache_dir, spec):
            with faults.armed(spec) if spec else _noop():
                cache = FrontendCache(disk_dir=cache_dir)
                program = compile_source(source, options, cache=cache)
                machine = Machine(program.module, {}, 2_000_000)
                trap = None
                try:
                    machine.run()
                except RangeTrap as error:  # a legitimate outcome
                    trap = str(error)
                return machine.output, machine.counters.checks, trap

        clean = run(str(tmp_path / "clean"), None)
        faulted = run(str(tmp_path / "faulted"), WRITE_FAULTS)
        assert faulted == clean

    def test_fuzz_one_under_faults(self, tmp_path):
        assert fuzz_one(3, config_labels=["PRX-LLS"], engines=False,
                        faults_spec=WRITE_FAULTS,
                        cache_dir=str(tmp_path)) is None

    def test_campaign_under_faults_is_clean(self, tmp_path):
        report = run_campaign(count=2, seed=0, jobs=1,
                              config_labels=["PRX-LLS"], engines=False,
                              faults_spec=WRITE_FAULTS,
                              cache_dir=str(tmp_path))
        assert report.failures == []
        assert report.programs == 2


class _noop:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
