"""Tests for the post-LCM cleanup passes."""

from repro.interp import Machine
from repro.ir import (Assign, Const, Function, INT, IRBuilder, Module, Var,
                      verify_function)
from repro.pre import (cleanup_after_lcm, propagate_copies_locally,
                       remove_dead_pure_code)

from ..conftest import lower


def straightline():
    f = Function("main", is_main=True)
    b = IRBuilder(f)
    b.set_block(f.new_block("entry"))
    return f, b


class TestCopyPropagation:
    def test_simple_copy_forwarded(self):
        f, b = straightline()
        x, y, z = Var("x", INT), Var("y", INT), Var("z", INT)
        b.assign(y, 5)
        b.assign(x, y)
        b.assign(z, b.binop("add", x, 1))
        b.print_value(z)
        b.ret()
        replaced = propagate_copies_locally(f)
        assert replaced >= 1
        module = Module("m")
        module.add(f)
        machine = Machine(module)
        machine.run()
        assert machine.output == [6]

    def test_redefinition_invalidates(self):
        f, b = straightline()
        x, y = Var("x", INT), Var("y", INT)
        b.assign(y, 5)
        b.assign(x, y)
        b.assign(y, 9)          # y redefined: x must keep the old value
        b.print_value(x)
        b.ret()
        propagate_copies_locally(f)
        module = Module("m")
        module.add(f)
        machine = Machine(module)
        machine.run()
        assert machine.output == [5]

    def test_constant_propagation(self):
        f, b = straightline()
        x = Var("x", INT)
        b.assign(x, 7)
        b.print_value(x)
        b.ret()
        replaced = propagate_copies_locally(f)
        assert replaced == 1


class TestDeadCodeRemoval:
    def test_unused_def_removed(self):
        f, b = straightline()
        b.assign(Var("x", INT), 5)
        b.ret()
        removed = remove_dead_pure_code(f)
        assert removed == 1

    def test_chains_collapse(self):
        f, b = straightline()
        x, y = Var("x", INT), Var("y", INT)
        b.assign(x, 5)
        b.assign(y, x)  # y unused; x only used by the dead copy
        b.ret()
        removed = remove_dead_pure_code(f)
        assert removed == 2

    def test_used_defs_kept(self):
        f, b = straightline()
        x = Var("x", INT)
        b.assign(x, 5)
        b.print_value(x)
        b.ret()
        assert remove_dead_pure_code(f) == 0

    def test_stores_never_removed(self):
        source = """
program p
  real :: a(5)
  a(1) = 1.0
end program
"""
        module = lower(source, insert_checks=False)
        from repro.ir import Store
        remove_dead_pure_code(module.main)
        assert any(isinstance(i, Store)
                   for i in module.main.instructions())

    def test_cleanup_combined(self):
        f, b = straightline()
        x, y = Var("x", INT), Var("y", INT)
        b.assign(x, 5)
        b.assign(y, x)
        b.print_value(y)
        b.ret()
        changed = cleanup_after_lcm(f)
        assert changed >= 1
        verify_function(f)
