"""Tests for expression PRE (lazy code motion)."""

from repro.interp import Machine
from repro.ir import (Assign, BinOp, Const, Function, INT, IRBuilder, Jump,
                      Module, Return, Var, verify_function)
from repro.pre import (LazyCodeMotion, cleanup_after_lcm,
                       eliminate_partial_redundancies)

from ..conftest import lower


def run_and_count(module):
    machine = Machine(module)
    machine.run()
    return machine


def build_diamond(partial=True):
    f = Function("main", is_main=True)
    b = IRBuilder(f)
    entry = f.new_block("entry")
    then_b = f.new_block("then")
    else_b = f.new_block("else")
    join = f.new_block("join")
    b.set_block(entry)
    a = Var("a", INT)
    c = Var("c", INT)
    b.assign(a, 7)
    cond = b.binop("gt", a, 3)
    b.cond_jump(cond, then_b, else_b)
    b.set_block(then_b)
    b.assign(c, b.binop("mul", a, 5))
    b.jump(join)
    b.set_block(else_b)
    if not partial:
        b.assign(c, b.binop("mul", a, 5))
    else:
        b.assign(c, 0)
    b.jump(join)
    b.set_block(join)
    b.assign(Var("d", INT), b.binop("mul", a, 5))
    b.print_value(Var("d", INT))
    b.print_value(c)
    b.ret()
    module = Module("m")
    module.add(f)
    return module, f


def count_muls(function):
    return sum(1 for i in function.instructions()
               if isinstance(i, BinOp) and i.op == "mul")


class TestLCM:
    def test_partial_redundancy_eliminated(self):
        module, f = build_diamond(partial=True)
        before = run_and_count(module)
        inserted, replaced = eliminate_partial_redundancies(f)
        verify_function(f)
        assert inserted == 1
        assert replaced == 1
        after = run_and_count(module)
        assert after.output == before.output

    def test_full_redundancy_eliminated(self):
        module, f = build_diamond(partial=False)
        before = run_and_count(module)
        inserted, replaced = eliminate_partial_redundancies(f)
        verify_function(f)
        assert replaced >= 1
        after = run_and_count(module)
        assert after.output == before.output

    def test_top_test_loop_blocks_hoisting(self):
        """The paper's observation (section 3.3): the control-flow
        structure of while-style loops prevents a computation from being
        anticipatable at the preheader, so plain LCM cannot hoist it."""
        source = """
program p
  input integer :: n = 10, m = 3
  integer :: i, s, t
  s = 0
  do i = 1, n
    t = m * 7
    s = s + t
  end do
  print s
end program
"""
        module = lower(source, insert_checks=False)
        before = run_and_count(module)
        eliminate_partial_redundancies(module.main)
        verify_function(module.main)
        after = run_and_count(module)
        assert after.output == before.output
        # no improvement is possible without loop rotation
        assert after.counters.instructions == before.counters.instructions

    def test_bottom_test_loop_hoists_invariant(self):
        """With a rotated (repeat-style) loop the invariant hoists."""
        f = Function("main", is_main=True)
        b = IRBuilder(f)
        entry = f.new_block("entry")
        body = f.new_block("body")
        exit_block = f.new_block("exit")
        i = Var("i", INT)
        m = Var("m", INT)
        s = Var("s", INT)
        b.set_block(entry)
        b.assign(i, 0)
        b.assign(m, 3)
        b.assign(s, 0)
        b.jump(body)
        b.set_block(body)
        t = b.binop("mul", m, 7)
        b.assign(s, b.binop("add", s, t))
        b.assign(i, b.binop("add", i, 1))
        cond = b.binop("lt", i, 10)
        b.cond_jump(cond, body, exit_block)
        b.set_block(exit_block)
        b.print_value(s)
        b.ret()
        module = Module("m")
        module.add(f)
        before = run_and_count(module)
        inserted, replaced = eliminate_partial_redundancies(f)
        cleanup_after_lcm(f)
        verify_function(f)
        assert inserted >= 1 and replaced >= 1
        after = run_and_count(module)
        assert after.output == before.output == [210]
        assert after.counters.instructions < before.counters.instructions

    def test_no_change_on_clean_code(self):
        source = """
program p
  input integer :: n = 3
  integer :: a
  a = n * 2
  print a
end program
"""
        module = lower(source, insert_checks=False)
        inserted, replaced = eliminate_partial_redundancies(module.main)
        assert replaced == 0

    def test_operand_kill_blocks_motion(self):
        source = """
program p
  input integer :: n = 3
  integer :: a, b
  a = n * 2
  n = n + 1
  b = n * 2
  print a + b
end program
"""
        # n is an input but reassigned; n*2 before and after differ
        module = lower(source, insert_checks=False)
        before = run_and_count(module)
        eliminate_partial_redundancies(module.main)
        after = run_and_count(module)
        assert after.output == before.output == [14]

    def test_branchy_program_preserved(self):
        source = """
program p
  input integer :: n = 6
  integer :: i, s
  s = 0
  do i = 1, n
    if (mod(i, 2) == 0) then
      s = s + i * 3
    else
      s = s - i * 3
    end if
  end do
  print s
end program
"""
        module = lower(source, insert_checks=False)
        before = run_and_count(module)
        eliminate_partial_redundancies(module.main)
        verify_function(module.main)
        after = run_and_count(module)
        assert after.output == before.output
