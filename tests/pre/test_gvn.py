"""Tests for global value numbering."""

from repro.checks import CanonicalCheck, OptimizerOptions, Scheme, \
    optimize_module
from repro.interp import Machine
from repro.ir import BinOp, Check
from repro.pre import global_value_numbering

from ..conftest import lower_ssa


def count_binops(function, op=None):
    return sum(1 for i in function.instructions()
               if isinstance(i, BinOp) and (op is None or i.op == op))


class TestGVN:
    def test_cross_block_redundancy_removed(self):
        module = lower_ssa("""
program p
  input integer :: n = 3, c = 1
  integer :: a, b
  if (c > 0) then
    a = n * 7
  end if
  b = n * 7
  print b
end program
""")
        main = module.main
        # n*7 in the if-arm does NOT dominate the later one; but the
        # entry block computes nothing -- only dominating repeats go
        removed = global_value_numbering(main)
        assert removed == 0  # no false positives across non-dominators

    def test_dominating_redundancy_removed(self):
        module = lower_ssa("""
program p
  input integer :: n = 3
  integer :: a, b, c
  a = n * 7
  if (a > 0) then
    b = n * 7
    print b
  end if
  c = n * 7
  print c
end program
""")
        main = module.main
        before = count_binops(main, "mul")
        removed = global_value_numbering(main)
        assert removed == 2
        assert count_binops(main, "mul") == before - 2
        machine = Machine(module, {"n": 3})
        machine.run()
        assert machine.output == [21, 21]

    def test_commutativity(self):
        module = lower_ssa("""
program p
  input integer :: n = 3, m = 4
  integer :: a, b
  a = n + m
  b = m + n
  print a + b
end program
""")
        removed = global_value_numbering(module.main)
        assert removed >= 1

    def test_copy_chains_share_numbers(self):
        module = lower_ssa("""
program p
  input integer :: n = 3
  integer :: a, b, c
  a = n
  b = a * 2
  c = n * 2
  print b + c
end program
""")
        removed = global_value_numbering(module.main)
        assert removed == 1

    def test_checks_families_merge(self):
        """The range-check payoff: nonlinear subscripts computed in
        different (dominating) blocks end up in one family."""
        source = """
program p
  input integer :: i = 2, j = 3, c = 1
  real :: a(100), b(100)
  a(i * j) = 1.0
  if (c > 0) then
    b(i * j) = 2.0
  end if
end program
"""
        module = lower_ssa(source)
        main = module.main
        global_value_numbering(main)
        families = {CanonicalCheck.of(inst).linexpr
                    for inst in main.instructions()
                    if isinstance(inst, Check)}
        # one family for i*j uppers and one for lowers
        symbolic = [f for f in families if not f.is_constant()]
        assert len(symbolic) == 2
        # and redundancy elimination now removes the duplicated pair
        optimize_module(module, OptimizerOptions(scheme=Scheme.NI))
        remaining = [inst for inst in main.instructions()
                     if isinstance(inst, Check)]
        assert len(remaining) == 2

    def test_semantics_preserved_on_suite_program(self):
        from repro.benchsuite import get_program
        program = get_program("linpackd")
        module = lower_ssa(program.source)
        reference = Machine(lower_ssa(program.source), program.test_inputs)
        reference.run()
        for function in module:
            global_value_numbering(function)
        machine = Machine(module, program.test_inputs)
        machine.run()
        assert machine.output == reference.output

    def test_phi_value_reused_across_blocks(self):
        # the merged (phi) value is a single SSA name, so a computation
        # over it in a dominated block merges with the dominating one
        module = lower_ssa("""
program p
  input integer :: c = 1
  integer :: n, a, b
  if (c > 0) then
    n = 2
  else
    n = 5
  end if
  a = n * 3
  if (a > 0) then
    b = n * 3
    print b
  end if
  print a
end program
""")
        removed = global_value_numbering(module.main)
        assert removed == 1
        machine = Machine(module, {"c": 0})
        machine.run()
        assert machine.output == [15, 15]

    def test_same_block_already_handled_by_builder_cse(self):
        # two identical expressions in one block share a temp at
        # lowering time; GVN has nothing left to do
        module = lower_ssa("""
program p
  input integer :: n = 2
  integer :: a, b
  a = n * 3
  b = n * 3
  print a + b
end program
""")
        assert global_value_numbering(module.main) == 0
