"""Tests for the block-local PRE properties (ANTLOC/COMP/TRANSP)."""

from repro.analysis.availexpr import expr_key
from repro.ir import BinOp
from repro.pre import LocalProperties

from ..conftest import lower


def properties_for(source):
    module = lower(source, insert_checks=False)
    return LocalProperties(module.main), module.main


class TestLocalProperties:
    def test_upward_and_downward_exposure(self):
        props, main = properties_for("""
program p
  input integer :: n = 1
  integer :: a, b
  a = n * 2
  n = 7
  b = n * 2
end program
""")
        entry = main.entry
        muls = [i for i in main.instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        key = expr_key(muls[0])
        # n*2 is computed before n's redefinition: upward exposed...
        assert key in props.antloc[entry]
        # ...and recomputed after it: downward exposed at block exit
        assert key in props.comp[entry]
        # but the block redefines n, so it is not transparent
        assert key not in props.transp[entry]

    def test_killed_expression_not_downward_exposed(self):
        props, main = properties_for("""
program p
  input integer :: n = 1
  integer :: a
  a = n * 2
  n = 7
end program
""")
        entry = main.entry
        muls = [i for i in main.instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        key = expr_key(muls[0])
        assert key in props.antloc[entry]
        assert key not in props.comp[entry]

    def test_transparent_block(self):
        props, main = properties_for("""
program p
  input integer :: n = 1, m = 2
  integer :: a
  a = n * 2
  print m
end program
""")
        entry = main.entry
        muls = [i for i in main.instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        key = expr_key(muls[0])
        assert key in props.transp[entry]

    def test_killed_by_map(self):
        props, main = properties_for("""
program p
  input integer :: n = 1
  integer :: a
  a = n * 2
end program
""")
        muls = [i for i in main.instructions()
                if isinstance(i, BinOp) and i.op == "mul"]
        key = expr_key(muls[0])
        assert key in props.killed_by("n")
        assert props.killed_by("unrelated") == set()
