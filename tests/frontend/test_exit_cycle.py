"""Tests for the 'exit' and 'cycle' loop-control statements."""

import pytest

from repro.checks import OptimizerOptions, Scheme
from repro.errors import SemanticError
from repro.frontend import ast, parse_source

from ..conftest import compile_and_run, lower, run_baseline


class TestParsing:
    def test_exit_statement(self):
        unit = parse_source(
            "program p\ninteger :: i\ndo i = 1, 3\nexit\nend do\n"
            "end program").main
        loop = unit.body[0]
        assert isinstance(loop.body[0], ast.ExitStmt)

    def test_cycle_statement(self):
        unit = parse_source(
            "program p\ninteger :: i\ndo i = 1, 3\ncycle\nend do\n"
            "end program").main
        loop = unit.body[0]
        assert isinstance(loop.body[0], ast.CycleStmt)


class TestLoweringErrors:
    def test_exit_outside_loop(self):
        with pytest.raises(SemanticError):
            lower("program p\nexit\nend program")

    def test_cycle_outside_loop(self):
        with pytest.raises(SemanticError):
            lower("program p\ncycle\nend program")


class TestSemantics:
    def test_exit_leaves_loop(self):
        machine = run_baseline("""
program p
  integer :: i, s
  s = 0
  do i = 1, 100
    if (i > 5) then
      exit
    end if
    s = s + i
  end do
  print s
  print i
end program
""")
        assert machine.output == [15, 6]

    def test_cycle_skips_rest_of_body(self):
        machine = run_baseline("""
program p
  integer :: i, s
  s = 0
  do i = 1, 10
    if (mod(i, 2) == 0) then
      cycle
    end if
    s = s + i
  end do
  print s
end program
""")
        assert machine.output == [25]  # 1+3+5+7+9

    def test_cycle_still_increments(self):
        machine = run_baseline("""
program p
  integer :: i, c
  c = 0
  do i = 1, 5
    cycle
    c = c + 1
  end do
  print c
  print i
end program
""")
        assert machine.output == [0, 6]

    def test_exit_in_while(self):
        machine = run_baseline("""
program p
  integer :: i
  i = 0
  while (.true.) do
    i = i + 1
    if (i >= 4) then
      exit
    end if
  end while
  print i
end program
""")
        assert machine.output == [4]

    def test_cycle_in_while(self):
        machine = run_baseline("""
program p
  integer :: i, s
  i = 0
  s = 0
  while (i < 6) do
    i = i + 1
    if (i == 3) then
      cycle
    end if
    s = s + i
  end while
  print s
end program
""")
        assert machine.output == [18]  # 1+2+4+5+6

    def test_nested_loops_exit_innermost(self):
        machine = run_baseline("""
program p
  integer :: i, j, s
  s = 0
  do i = 1, 3
    do j = 1, 10
      if (j > 2) then
        exit
      end if
      s = s + 1
    end do
  end do
  print s
end program
""")
        assert machine.output == [6]


class TestOptimizationWithLoopControl:
    SOURCE = """
program p
  input integer :: n = 20, lim = 12
  integer :: i
  real :: a(50)
  do i = 1, n
    if (i > lim) then
      exit
    end if
    if (mod(i, 3) == 0) then
      cycle
    end if
    a(i) = real(i)
  end do
  print a(1)
end program
"""

    @pytest.mark.parametrize("scheme", list(Scheme),
                             ids=[s.value for s in Scheme])
    def test_all_schemes_preserve_behavior(self, scheme):
        baseline = run_baseline(self.SOURCE)
        machine = compile_and_run(self.SOURCE,
                                  OptimizerOptions(scheme=scheme))
        assert machine.output == baseline.output

    def test_early_exit_blocks_hoisting_of_late_checks(self):
        """A check after a conditional exit is not anticipatable at the
        body entry, so LLS must keep it inside (sound conservatism)."""
        baseline = run_baseline(self.SOURCE)
        lls = compile_and_run(self.SOURCE, OptimizerOptions(scheme=Scheme.LLS))
        assert lls.counters.checks <= baseline.counters.checks
        # a(i) is only checked on iterations that reach it; the hoisted
        # version would trap on n > 50 even when lim stops the loop first
        machine = compile_and_run(self.SOURCE,
                                  OptimizerOptions(scheme=Scheme.LLS),
                                  {"n": 200, "lim": 12})
        assert machine.counters.traps == 0
