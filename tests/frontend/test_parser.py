"""Tests for the mini-Fortran parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast, parse_source


def parse_main(body, decls="integer :: i\n"):
    source = "program t\n%s%s\nend program\n" % (decls, body)
    return parse_source(source).main


def first_stmt(body, decls="integer :: i\n"):
    return parse_main(body, decls).body[0]


class TestUnits:
    def test_program_name(self):
        unit = parse_source("program hello\nend program").main
        assert unit.name == "hello"
        assert unit.is_main

    def test_end_with_name(self):
        unit = parse_source("program hello\nend program hello").main
        assert unit.name == "hello"

    def test_mismatched_end_name(self):
        with pytest.raises(ParseError):
            parse_source("program hello\nend program world")

    def test_subroutine_params(self):
        src = ("program p\nend program\n"
               "subroutine s(a, b)\ninteger :: a, b\nend subroutine\n")
        units = parse_source(src).units
        assert units[1].params == ["a", "b"]
        assert not units[1].is_main

    def test_two_programs_rejected(self):
        with pytest.raises(ParseError):
            parse_source("program a\nend program\nprogram b\nend program")

    def test_empty_file_rejected(self):
        with pytest.raises(ParseError):
            parse_source("   \n  \n")

    def test_missing_main_is_parseable(self):
        src = "subroutine s()\nend subroutine\n"
        tree = parse_source(src)
        with pytest.raises(ValueError):
            tree.main


class TestDeclarations:
    def test_scalar_decl(self):
        unit = parse_main("i = 1", "integer :: i, j\n")
        decl = unit.decls[0]
        assert isinstance(decl, ast.ScalarDecl)
        assert decl.names == ["i", "j"]

    def test_array_decl_with_bounds(self):
        unit = parse_main("", "real :: a(0:9)\n")
        decl = unit.decls[0]
        assert isinstance(decl, ast.ArrayDecl)
        assert decl.dims[0][0] is not None

    def test_array_decl_bare_extent(self):
        unit = parse_main("", "real :: a(10)\n")
        assert unit.decls[0].dims[0][0] is None

    def test_multi_dim_array(self):
        unit = parse_main("", "real :: a(10, 0:5, 3)\n")
        assert len(unit.decls[0].dims) == 3

    def test_mixed_decl_line(self):
        unit = parse_main("", "real :: x, a(5), y\n")
        kinds = [type(d).__name__ for d in unit.decls]
        assert kinds == ["ScalarDecl", "ArrayDecl"]
        assert unit.decls[0].names == ["x", "y"]

    def test_input_decl(self):
        unit = parse_main("", "input integer :: n = 100\n")
        decl = unit.decls[0]
        assert isinstance(decl, ast.InputDecl)
        assert decl.name == "n"

    def test_input_decl_multiple(self):
        unit = parse_main("", "input integer :: n = 1, m = 2\n")
        assert len(unit.decls) == 2

    def test_input_requires_default(self):
        with pytest.raises(ParseError):
            parse_main("", "input integer :: n\n")


class TestStatements:
    def test_scalar_assignment(self):
        stmt = first_stmt("i = 3")
        assert isinstance(stmt, ast.AssignStmt)
        assert isinstance(stmt.target, ast.VarRef)

    def test_array_assignment(self):
        stmt = first_stmt("a(i) = 1.0", "integer :: i\nreal :: a(5)\n")
        assert isinstance(stmt.target, ast.ArrayRef)

    def test_do_loop(self):
        stmt = first_stmt("do i = 1, 10\ni = i\nend do")
        assert isinstance(stmt, ast.DoStmt)
        assert stmt.var == "i"
        assert stmt.step is None
        assert len(stmt.body) == 1

    def test_do_loop_with_step(self):
        stmt = first_stmt("do i = 10, 1, -2\nend do")
        assert stmt.step is not None

    def test_enddo_merged_keyword(self):
        stmt = first_stmt("do i = 1, 3\nenddo")
        assert isinstance(stmt, ast.DoStmt)

    def test_while_loop(self):
        stmt = first_stmt("while (i < 3) do\ni = i + 1\nend while")
        assert isinstance(stmt, ast.WhileStmt)

    def test_if_then(self):
        stmt = first_stmt("if (i > 0) then\ni = 1\nend if")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is None

    def test_if_else(self):
        stmt = first_stmt("if (i > 0) then\ni = 1\nelse\ni = 2\nend if")
        assert stmt.else_body is not None

    def test_else_if_chain(self):
        stmt = first_stmt(
            "if (i > 0) then\ni = 1\nelse if (i < 0) then\ni = 2\n"
            "else\ni = 3\nend if")
        assert len(stmt.arms) == 2
        assert stmt.else_body is not None

    def test_endif_merged_keyword(self):
        stmt = first_stmt("if (i > 0) then\nendif")
        assert isinstance(stmt, ast.IfStmt)

    def test_call_statement(self):
        stmt = first_stmt("call s(i, 2)")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.name == "s"
        assert len(stmt.args) == 2

    def test_call_no_args(self):
        stmt = first_stmt("call s")
        assert stmt.args == []

    def test_print(self):
        stmt = first_stmt("print i + 1")
        assert isinstance(stmt, ast.PrintStmt)

    def test_return(self):
        stmt = first_stmt("return")
        assert isinstance(stmt, ast.ReturnStmt)


class TestExpressions:
    def expr(self, text, decls="integer :: i, j\n"):
        return first_stmt("i = %s" % text, decls).expr

    def test_precedence_mul_over_add(self):
        expr = self.expr("1 + 2 * 3")
        assert expr.op == "add"
        assert expr.rhs.op == "mul"

    def test_left_associativity(self):
        expr = self.expr("10 - 3 - 2")
        assert expr.op == "sub"
        assert expr.lhs.op == "sub"

    def test_parentheses(self):
        expr = self.expr("(1 + 2) * 3")
        assert expr.op == "mul"

    def test_unary_minus(self):
        expr = self.expr("-i")
        assert isinstance(expr, ast.UnExpr)
        assert expr.op == "neg"

    def test_unary_plus_is_transparent(self):
        expr = self.expr("+i")
        assert isinstance(expr, ast.VarRef)

    def test_comparison(self):
        expr = self.expr("i <= j")
        assert expr.op == "le"

    def test_logical_precedence(self):
        expr = self.expr("i < 1 .or. j < 2 .and. i < 3")
        assert expr.op == "or"
        assert expr.rhs.op == "and"

    def test_not(self):
        expr = self.expr(".not. (i < 1)")
        assert expr.op == "not"

    def test_intrinsic_call(self):
        expr = self.expr("mod(i, 2)")
        assert isinstance(expr, ast.Intrinsic)
        assert expr.name == "mod"

    def test_real_conversion_intrinsic(self):
        expr = self.expr("real(i)")
        assert isinstance(expr, ast.Intrinsic)

    def test_array_ref_vs_intrinsic(self):
        # 'mod' declared as an array shadows the intrinsic
        expr = self.expr("mod(i)", "integer :: i, j\nreal :: mod(5)\n")
        assert isinstance(expr, ast.ArrayRef)

    def test_multi_dim_ref(self):
        expr = self.expr("a(i, j)", "integer :: i, j\nreal :: a(5, 5)\n")
        assert isinstance(expr, ast.ArrayRef)
        assert len(expr.indices) == 2


class TestErrors:
    def test_missing_then(self):
        with pytest.raises(ParseError):
            parse_main("if (i > 0)\nend if")

    def test_garbage_after_statement(self):
        with pytest.raises(ParseError):
            parse_main("i = 1 1")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_main("i = (1 + 2")

    def test_statement_before_decl_blocks_decl(self):
        # declarations must precede statements; a later decl line parses
        # as a statement and fails
        with pytest.raises(ParseError):
            parse_main("i = 1\ninteger :: j")
