"""Tests for the mini-Fortran scanner."""

import pytest

from repro.errors import LexError
from repro.frontend import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert kinds("") == [TokenKind.EOF]

    def test_identifier(self):
        token = tokenize("alpha")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "alpha"

    def test_identifiers_are_lowercased(self):
        assert tokenize("AlPhA")[0].text == "alpha"

    def test_keyword(self):
        token = tokenize("program")[0]
        assert token.kind is TokenKind.KEYWORD
        assert token.is_keyword("program")

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_real_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.REAL
        assert token.value == 3.25

    def test_real_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_leading_dot_real(self):
        token = tokenize(".5")[0]
        assert token.kind is TokenKind.REAL
        assert token.value == 0.5


class TestOperators:
    def test_arithmetic_operators(self):
        assert kinds("+ - * /")[:4] == [TokenKind.PLUS, TokenKind.MINUS,
                                        TokenKind.STAR, TokenKind.SLASH]

    def test_comparison_operators(self):
        assert kinds("< <= > >= == /=")[:6] == [
            TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE,
            TokenKind.EQ, TokenKind.NE]

    def test_double_colon(self):
        assert kinds("::")[0] is TokenKind.DOUBLE_COLON

    def test_single_colon(self):
        assert kinds("1:10")[1] is TokenKind.COLON

    def test_assignment_vs_equality(self):
        assert kinds("=")[0] is TokenKind.ASSIGN
        assert kinds("==")[0] is TokenKind.EQ

    def test_logical_words(self):
        assert kinds(".and. .or. .not.")[:3] == [
            TokenKind.AND, TokenKind.OR, TokenKind.NOT]

    def test_boolean_literals(self):
        assert kinds(".true. .false.")[:2] == [TokenKind.TRUE,
                                               TokenKind.FALSE]


class TestLayout:
    def test_comment_skipped(self):
        assert texts("a ! this is a comment\nb") == ["a", "b"]

    def test_newline_token_between_statements(self):
        token_kinds = kinds("a\nb")
        assert TokenKind.NEWLINE in token_kinds

    def test_blank_lines_collapse(self):
        token_kinds = kinds("a\n\n\n\nb")
        assert token_kinds.count(TokenKind.NEWLINE) == 1

    def test_leading_newlines_dropped(self):
        assert kinds("\n\n\na")[0] is TokenKind.IDENT

    def test_continuation(self):
        token_kinds = kinds("a + &\n    b")
        assert TokenKind.NEWLINE not in token_kinds[:3]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        idents = [t for t in tokens if t.kind is TokenKind.IDENT]
        assert [t.line for t in idents] == [1, 2, 3]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_bad_dot_word(self):
        with pytest.raises(LexError):
            tokenize(".bogus.")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as info:
            tokenize("abc\n  #")
        assert info.value.line == 2
